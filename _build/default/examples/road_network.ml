(* Road-network route availability.

   The paper's second motivating workload: edges of a road network carry a
   probability of being passable, and congestion is correlated between
   nearby roads (a busy path blocks its neighbours — hence {e negative}
   couplings inside each junction's neighbor-edge set). A route pattern
   (a labelled path) subgraph-similarly matches a district when, with
   probability >= epsilon, the district has a world within distance delta
   of the route.

   The district graphs are built by hand here — no generator — to show the
   public construction API end to end.

   Run with:  dune exec examples/road_network.exe *)

module Prng = Psst_util.Prng

(* Vertex labels are zones, edge labels are road types. *)
let residential, commercial, industrial = (0, 1, 2)
let street, avenue = (0, 1)

(* A district: a ring of junctions alternating zones, with avenues across.
   [clear] is the per-road probability of being passable; [kappa] couples
   the roads of each junction (negative = congestion spreads). *)
let district ~ring ~clear ~kappa =
  let n = ring in
  let vlabels =
    Array.init n (fun i ->
        match i mod 3 with 0 -> residential | 1 -> commercial | _ -> industrial)
  in
  let ring_edges = List.init n (fun i -> (i, (i + 1) mod n, street)) in
  let cross_edges =
    if n >= 6 then [ (0, n / 2, avenue); (1, (n / 2) + 1, avenue) ] else []
  in
  let skeleton = Lgraph.create ~vlabels ~edges:(ring_edges @ cross_edges) in
  (* Neighbor-edge sets: the roads meeting at each even junction, chained by
     the shared ring edge so the factor list is a consistent junction tree.
     We build conditionals by hand: the first junction's set is a joint, the
     rest condition on the ring edge shared with the previous set. *)
  let m = Lgraph.num_edges skeleton in
  let covered = Array.make m false in
  let factors = ref [] in
  let joint scope =
    (* Ising-style: passable with probability [clear], junction roads
       coupled by [kappa] (same-state pairs weighted by e^kappa). *)
    let k = Array.length scope in
    let data =
      Array.init (1 lsl k) (fun mask ->
          let w = ref 1. in
          for i = 0 to k - 1 do
            w := !w *. (if mask land (1 lsl i) <> 0 then clear else 1. -. clear)
          done;
          let agree = ref 0 in
          for i = 0 to k - 1 do
            for j = i + 1 to k - 1 do
              if (mask lsr i) land 1 = (mask lsr j) land 1 then incr agree
            done
          done;
          !w *. exp (kappa *. float_of_int !agree))
    in
    let total = Array.fold_left ( +. ) 0. data in
    Factor.create scope (Array.map (fun x -> x /. total) data)
  in
  for v = 0 to n - 1 do
    if v mod 2 = 0 then begin
      let incident = List.map snd (Lgraph.neighbors skeleton v) in
      let old_edges = List.filter (fun e -> covered.(e)) incident in
      let new_edges = List.filter (fun e -> not covered.(e)) incident in
      match new_edges with
      | [] -> ()
      | _ ->
        let scope =
          Array.of_list
            (List.sort_uniq compare
               ((match old_edges with e :: _ -> [ e ] | [] -> []) @ new_edges))
        in
        let j = joint scope in
        let f =
          match old_edges with
          | [] -> j
          | shared :: _ ->
            (* conditional on the shared edge: renormalise its slices *)
            let t = Factor.condition j shared true and fa = Factor.condition j shared false in
            let zt = Factor.total t and zf = Factor.total fa in
            Factor.of_fun (Factor.vars j) (fun mask ->
                let pos =
                  Array.to_list (Factor.vars j)
                  |> List.mapi (fun i v -> (v, i))
                  |> List.assoc shared
                in
                let slice = if mask land (1 lsl pos) <> 0 then zt else zf in
                Factor.value j mask /. slice)
        in
        List.iter (fun e -> covered.(e) <- true) new_edges;
        factors := f :: !factors
    end
  done;
  (* Any road not covered by a junction factor is independently passable. *)
  for e = 0 to m - 1 do
    if not covered.(e) then
      factors := Factor.create [| e |] [| 1. -. clear; clear |] :: !factors
  done;
  Pgraph.make skeleton (List.rev !factors)

(* The route pattern: residential -> commercial -> industrial along streets. *)
let route =
  Lgraph.create
    ~vlabels:[| residential; commercial; industrial |]
    ~edges:[ (0, 1, street); (1, 2, street) ]

let () =
  let districts =
    [|
      district ~ring:6 ~clear:0.9 ~kappa:(-0.2);
      district ~ring:8 ~clear:0.7 ~kappa:(-0.8);
      district ~ring:6 ~clear:0.5 ~kappa:(-1.5);
      district ~ring:9 ~clear:0.85 ~kappa:0.0;
      district ~ring:8 ~clear:0.35 ~kappa:(-0.5);
    |]
  in
  Printf.printf "%d districts; route pattern: %d zones, %d roads\n"
    (Array.length districts)
    (Lgraph.num_vertices route) (Lgraph.num_edges route);

  (* Exact availability per district (small graphs, exact is cheap). *)
  let relaxed, _ = Relax.relaxed_set route ~delta:0 in
  Array.iteri
    (fun i g ->
      let p = Verify.exact g relaxed in
      Printf.printf "  district %d: route availability %.3f\n" i p)
    districts;

  (* The same via the indexed pipeline with one road of slack. *)
  let db = Query.index_database districts in
  let config =
    { Query.default_config with epsilon = 0.6; delta = 0; verifier = `Exact }
  in
  let out = Query.run db route config in
  Printf.printf
    "districts where the whole route is available with probability >= %.1f: \
     [%s]\n"
    config.epsilon
    (String.concat "; " (List.map string_of_int out.Query.answers))
