type params = {
  alpha : float;
  beta : float;
  gamma : float;
  max_edges : int;
  emb_cap : int;
}

let default_params =
  { alpha = 0.15; beta = 0.15; gamma = 0.15; max_edges = 3; emb_cap = 64 }

type feature = {
  graph : Lgraph.t;
  key : string;
  support : int list;
  strong_support : int list;
}

let max_disjoint_embeddings embs =
  match embs with
  | [] -> 0
  | _ ->
    let arr = Array.of_list embs in
    let n = Array.length arr in
    let edges = ref [] in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if Embedding.edge_disjoint arr.(i) arr.(j) then edges := (i, j) :: !edges
      done
    done;
    let g = Mwc.make ~weights:(Array.make n 1.0) ~edges:!edges in
    let clique, _ = Mwc.max_weight_clique ~node_budget:20_000 g in
    List.length clique

(* Observed label alphabets of the database, used to drive extensions. *)
let alphabets db =
  let vl = Hashtbl.create 16 and el = Hashtbl.create 16 in
  Array.iter
    (fun g ->
      Array.iter (fun l -> Hashtbl.replace vl l ()) (Lgraph.vertex_labels g);
      Array.iter
        (fun (e : Lgraph.edge) -> Hashtbl.replace el e.label ())
        (Lgraph.edges g))
    db;
  let sorted tbl = Hashtbl.fold (fun k () acc -> k :: acc) tbl [] |> List.sort compare in
  (sorted vl, sorted el)

(* All one-edge extensions of a connected pattern: close a pair of existing
   vertices or sprout a new labelled vertex. *)
let extensions vlabels elabels p =
  let n = Lgraph.num_vertices p in
  let base_v = Array.to_list (Lgraph.vertex_labels p) in
  let base_e =
    Array.to_list (Lgraph.edges p) |> List.map (fun (e : Lgraph.edge) -> (e.u, e.v, e.label))
  in
  let close =
    List.concat_map
      (fun (u, v) ->
        if Lgraph.has_edge p u v then []
        else List.map (fun el -> (base_v, base_e @ [ (u, v, el) ])) elabels)
      (Psst_util.Combin.pairs (List.init n (fun i -> i)))
  in
  let sprout =
    List.concat_map
      (fun u ->
        List.concat_map
          (fun vl ->
            List.map (fun el -> (base_v @ [ vl ], base_e @ [ (u, n, el) ])) elabels)
          vlabels)
      (List.init n (fun i -> i))
  in
  List.map
    (fun (vls, es) -> Lgraph.create ~vlabels:(Array.of_list vls) ~edges:es)
    (close @ sprout)

let support_of db candidates_idx p =
  List.filter (fun gi -> Vf2.exists p db.(gi)) candidates_idx

let strong_support_of db params p support =
  List.filter
    (fun gi ->
      let embs = Vf2.distinct_embeddings ~cap:params.emb_cap p db.(gi) in
      match embs with
      | [] -> false
      | _ ->
        let disjoint = max_disjoint_embeddings embs in
        float_of_int disjoint /. float_of_int (List.length embs) >= params.alpha)
    support

let select db params =
  let nd = Array.length db in
  let all_idx = List.init nd (fun i -> i) in
  let vlabels, elabels = alphabets db in
  let selected = Hashtbl.create 64 in
  (* key -> feature *)
  let out = ref [] in
  let add f = Hashtbl.replace selected f.key f; out := f :: !out in
  (* Single-vertex features: always indexed. *)
  List.iter
    (fun vl ->
      let g = Lgraph.vertices_only ~vlabels:[| vl |] in
      let support = support_of db all_idx g in
      if support <> [] then
        add { graph = g; key = Canon.code g; support; strong_support = support })
    vlabels;
  (* Single-edge features: always indexed. *)
  List.iter
    (fun (vl1, vl2, el) ->
      let g = Lgraph.create ~vlabels:[| vl1; vl2 |] ~edges:[ (0, 1, el) ] in
      let key = Canon.code g in
      if not (Hashtbl.mem selected key) then begin
        let support = support_of db all_idx g in
        if support <> [] then
          add
            {
              graph = g;
              key;
              support;
              strong_support = strong_support_of db params g support;
            }
      end)
    (List.concat_map
       (fun vl1 ->
         List.concat_map
           (fun vl2 ->
             if vl1 <= vl2 then List.map (fun el -> (vl1, vl2, el)) elabels else [])
           vlabels)
       vlabels);
  (* Level-wise growth from the single-edge frontier. *)
  let frontier = ref (List.filter (fun f -> Lgraph.num_edges f.graph = 1) !out) in
  let level = ref 1 in
  while !level < params.max_edges && !frontier <> [] do
    incr level;
    let next = ref [] in
    let seen_this_level = Hashtbl.create 64 in
    List.iter
      (fun parent ->
        List.iter
          (fun cand ->
            let key = Canon.code cand in
            if
              (not (Hashtbl.mem selected key))
              && not (Hashtbl.mem seen_this_level key)
            then begin
              Hashtbl.replace seen_this_level key ();
              let support = support_of db parent.support cand in
              let strong = strong_support_of db params cand support in
              let frequent =
                float_of_int (List.length strong) /. float_of_int nd >= params.beta
              in
              if frequent then begin
                (* Discriminative check against selected subfeatures. *)
                let subkeys =
                  List.init (Lgraph.num_edges cand) (fun eid ->
                      let sub = Lgraph.delete_edges cand [ eid ] in
                      let sub, _ = Lgraph.drop_isolated sub in
                      Canon.code sub)
                  |> List.sort_uniq compare
                in
                let parent_supports =
                  List.filter_map (Hashtbl.find_opt selected) subkeys
                  |> List.map (fun f -> f.support)
                in
                let inter =
                  match parent_supports with
                  | [] -> all_idx
                  | first :: rest ->
                    List.fold_left
                      (fun acc s -> List.filter (fun x -> List.mem x s) acc)
                      first rest
                in
                let dis =
                  match support with
                  | [] -> 0.
                  | _ ->
                    float_of_int (List.length inter) /. float_of_int (List.length support)
                in
                if dis >= 1. +. params.gamma then begin
                  let f =
                    { graph = cand; key; support; strong_support = strong }
                  in
                  add f;
                  next := f :: !next
                end
              end
            end)
          (extensions vlabels elabels parent.graph))
      !frontier;
    frontier := !next
  done;
  List.rev !out

(* --- binary codec --- *)

let encode_feature e (f : feature) =
  Psst_store.put_lgraph e f.graph;
  Psst_store.put_string e f.key;
  Psst_store.put_int_list e f.support;
  Psst_store.put_int_list e f.strong_support

let decode_support d what =
  let l = Psst_store.get_int_list d in
  let rec sorted = function
    | a :: (b :: _ as rest) -> a < b && sorted rest
    | _ -> true
  in
  if List.exists (fun g -> g < 0) l || not (sorted l) then
    Psst_store.error "feature %s list is not a sorted set of graph ids" what;
  l

let decode_feature d =
  let graph = Psst_store.get_lgraph d in
  let key = Psst_store.get_string d in
  let support = decode_support d "support" in
  let strong_support = decode_support d "strong-support" in
  { graph; key; support; strong_support }
