(* Uncertain RDF pattern matching.

   The paper's third motivating workload: RDF graphs integrated from
   several sources carry per-triple confidence, and triples extracted from
   the same source sentence are correlated. A SPARQL-ish basic graph
   pattern is a query graph; T-PS retrieves the integrated graphs that
   match it with probability >= epsilon, tolerating delta missing triples.

   Run with:  dune exec examples/rdf_search.exe *)

(* Entity classes (vertex labels). *)
let person, company, city, university = (0, 1, 2, 3)

(* Predicates (edge labels). *)
let works_for, located_in, lives_in, studied_at = (0, 1, 2, 3)

(* One integrated knowledge graph: entities + triples with confidences.
   Triples from the same extraction share a factor: [groups] lists
   (triple-ids, conditional-style correlation strength). *)
let kg ~entities ~triples ~groups =
  let skeleton = Lgraph.create ~vlabels:entities ~edges:triples in
  let m = Lgraph.num_edges skeleton in
  let covered = Array.make m false in
  let factors = ref [] in
  List.iter
    (fun (ids, confidences, boost) ->
      let scope = Array.of_list (List.sort compare ids) in
      let k = Array.length scope in
      let conf = Array.of_list confidences in
      let data =
        Array.init (1 lsl k) (fun mask ->
            let w = ref 1. in
            for i = 0 to k - 1 do
              w := !w *. (if mask land (1 lsl i) <> 0 then conf.(i) else 1. -. conf.(i))
            done;
            (* same-sentence triples stand or fall together *)
            let all = (1 lsl k) - 1 in
            if mask = all || mask = 0 then !w *. exp boost else !w)
      in
      let total = Array.fold_left ( +. ) 0. data in
      factors := Factor.create scope (Array.map (fun x -> x /. total) data) :: !factors;
      Array.iter (fun e -> covered.(e) <- true) scope)
    groups;
  for e = 0 to m - 1 do
    if not covered.(e) then
      (* independent triple with its own confidence *)
      factors := Factor.create [| e |] [| 0.2; 0.8 |] :: !factors
  done;
  Pgraph.make skeleton (List.rev !factors)

(* Three integrated graphs about people, employers and places. *)
let kg0 =
  (* alice works_for acme located_in berlin; alice lives_in berlin;
     alice studied_at tu located_in berlin. *)
  kg
    ~entities:[| person; company; city; university |]
    ~triples:
      [
        (0, 1, works_for) (* e0 *);
        (1, 2, located_in) (* e1 *);
        (0, 2, lives_in) (* e2 *);
        (0, 3, studied_at) (* e3 *);
        (3, 2, located_in) (* e4 *);
      ]
    ~groups:
      [
        (* e0 and e1 extracted from one sentence: strongly co-occurring *)
        ([ 0; 1 ], [ 0.9; 0.85 ], 1.0);
        (* e3 and e4 from another, looser sentence *)
        ([ 3; 4 ], [ 0.7; 0.8 ], 0.5);
      ]

let kg1 =
  (* bob works_for globex located_in paris, low-confidence extraction. *)
  kg
    ~entities:[| person; company; city |]
    ~triples:[ (0, 1, works_for); (1, 2, located_in); (0, 2, lives_in) ]
    ~groups:[ ([ 0; 1 ], [ 0.45; 0.5 ], 0.8) ]

let kg2 =
  (* carol studied_at oxford; employer unknown (no works_for triple). *)
  kg
    ~entities:[| person; university; city |]
    ~triples:[ (0, 1, studied_at); (1, 2, located_in) ]
    ~groups:[ ([ 0; 1 ], [ 0.9; 0.9 ], 1.0) ]

(* The basic graph pattern: ?p works_for ?c AND ?c located_in ?city AND
   ?p lives_in ?city — an employee living where their employer is. *)
let pattern =
  Lgraph.create
    ~vlabels:[| person; company; city |]
    ~edges:[ (0, 1, works_for); (1, 2, located_in); (0, 2, lives_in) ]

let () =
  let graphs = [| kg0; kg1; kg2 |] in
  Printf.printf "3 integrated RDF graphs; pattern: %d triples\n"
    (Lgraph.num_edges pattern);

  (* Exact match probabilities, strict and with one triple of tolerance. *)
  Array.iteri
    (fun i g ->
      let strict, _ = Relax.relaxed_set pattern ~delta:0 in
      let loose, _ = Relax.relaxed_set pattern ~delta:1 in
      Printf.printf
        "  kg%d: Pr(match) = %.3f   Pr(match, one triple missing ok) = %.3f\n" i
        (Verify.exact g strict) (Verify.exact g loose))
    graphs;

  let db = Query.index_database graphs in
  let config =
    { Query.default_config with epsilon = 0.5; delta = 1; verifier = `Exact }
  in
  let out = Query.run db pattern config in
  Printf.printf "T-PS answers at eps=%.1f, delta=%d: [%s]\n" config.epsilon
    config.delta
    (String.concat "; " (List.map string_of_int out.Query.answers))
