(* Protein-protein interaction motif search.

   The paper's motivating bioinformatics workload: a corpus of probabilistic
   PPI networks (STRING-style confidence scores, correlated neighbor
   interactions), a protein-complex motif as the query, and a T-PS search
   for the organisms plausibly containing the complex.

   Run with:  dune exec examples/ppi_search.exe *)

module Prng = Psst_util.Prng

let () =
  (* A corpus of 60 networks over 5 organisms. Interactions inside an
     organism's conserved module are positively correlated; grafted foreign
     modules (spurious cross-species predictions) are anti-correlated. *)
  let params =
    {
      Generator.default_params with
      num_graphs = 60;
      num_organisms = 5;
      min_vertices = 10;
      max_vertices = 14;
      motif_edges = 8;
      num_vertex_labels = 10;
      foreign_motif_prob = 0.5;
      seed = 7;
    }
  in
  let ds = Generator.generate params in
  Printf.printf "corpus: %d PPI networks, %d organisms\n" (Array.length ds.graphs)
    params.num_organisms;

  let db, t_index = Psst_util.Timer.time (fun () -> Query.index_database ds.graphs) in
  Printf.printf "index: %d features, %d PMI entries, built in %.2fs\n"
    (List.length db.Query.features)
    (Pmi.filled_entries db.Query.pmi)
    t_index;

  (* The query: a conserved sub-complex of one organism's module. *)
  let rng = Prng.make 11 in
  let complex, organism = Generator.extract_query ~from_motif:true rng ds ~edges:6 in
  Printf.printf "\nquery: %d-protein complex from organism %d\n"
    (Lgraph.num_vertices complex)
    organism;

  let config = { Query.default_config with epsilon = 0.5; delta = 1 } in
  let out, t_query = Psst_util.Timer.time (fun () -> Query.run db complex config) in
  Printf.printf
    "T-PS(eps=%.1f, delta=%d) answered in %.3fs: %d structural candidates -> \
     %d pruned, %d accepted by bounds, %d verified by sampling\n"
    config.epsilon config.delta t_query out.Query.stats.structural_candidates
    out.Query.stats.pruned_by_bounds out.Query.stats.accepted_by_bounds
    out.Query.stats.prob_candidates;

  let members = Generator.organism_members ds organism in
  let precision, recall =
    Psst_util.Stats.precision_recall ~returned:out.Query.answers ~truth:members
  in
  Printf.printf "answers: [%s]\n"
    (String.concat "; " (List.map string_of_int out.Query.answers));
  Printf.printf
    "against the organism ground truth: precision %.0f%%, recall %.0f%%\n"
    (100. *. precision) (100. *. recall);

  (* The correlation story: compare with the independent-edge projection. *)
  let ind_db = Query.index_database (Generator.independent_db ds) in
  let out_ind = Query.run ind_db complex config in
  let p_ind, r_ind =
    Psst_util.Stats.precision_recall ~returned:out_ind.Query.answers ~truth:members
  in
  Printf.printf
    "independent-edge model on the same corpus: precision %.0f%%, recall %.0f%%\n"
    (100. *. p_ind) (100. *. r_ind)
