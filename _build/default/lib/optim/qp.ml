module Bitset = Psst_util.Bitset

type instance = {
  universe : int;
  sets : (Bitset.t * float * float) array;
}

type solution = { x : float array; objective : float; feasible : bool }

let objective inst x =
  let c = ref 0. and u = ref 0. in
  Array.iteri
    (fun i (_, wl, wu) ->
      c := !c +. (wl *. x.(i));
      u := !u +. (wu *. x.(i)))
    inst.sets;
  !c -. (!u *. !u)

let integer_objective inst ~chosen =
  let c = ref 0. and u = ref 0. in
  List.iter
    (fun i ->
      let _, wl, wu = inst.sets.(i) in
      c := !c +. wl;
      u := !u +. wu)
    chosen;
  !c -. (!u *. !u)

let integer_objective_safe inst ~chosen =
  let wl_total =
    List.fold_left (fun acc i -> let _, wl, _ = inst.sets.(i) in acc +. wl) 0. chosen
  in
  let cross =
    List.fold_left
      (fun acc (i, j) ->
        let _, _, wui = inst.sets.(i) and _, _, wuj = inst.sets.(j) in
        acc +. Float.min wui wuj)
      0.
      (Psst_util.Combin.pairs chosen)
  in
  wl_total -. cross

(* Sets covering each universe element, precomputed. *)
let covering_sets inst =
  Array.init inst.universe (fun e ->
      let l = ref [] in
      Array.iteri (fun i (s, _, _) -> if Bitset.mem s e then l := i :: !l) inst.sets;
      !l)

let coverage ?(eps = 1e-6) inst x =
  let cov = covering_sets inst in
  Array.for_all
    (fun sets_of_e ->
      List.fold_left (fun acc i -> acc +. x.(i)) 0. sets_of_e >= 1. -. eps)
    cov

let clamp lo hi v = Float.max lo (Float.min hi v)

(* Feasibility-preserving coordinate ascent. The objective
   wL·x - (wU·x)^2 restricted to one coordinate is a concave parabola, so
   the exact 1-D maximiser is available in closed form; the feasible
   interval for x_i given the others follows from the coverage rows of the
   sets containing each element of s_i. Starting from a feasible point,
   every sweep stays feasible and never decreases the objective. *)
let coordinate_ascent inst cov x =
  let n = Array.length inst.sets in
  (* coverage per element, maintained incrementally *)
  let cover_of = Array.make inst.universe 0. in
  Array.iteri
    (fun e sets_of_e ->
      cover_of.(e) <- List.fold_left (fun acc i -> acc +. x.(i)) 0. sets_of_e)
    cov;
  let u_dot = ref 0. in
  Array.iteri (fun i (_, _, wu) -> u_dot := !u_dot +. (wu *. x.(i))) inst.sets;
  let sweeps = 200 and tol = 1e-10 in
  let changed = ref true in
  let sweep = ref 0 in
  while !changed && !sweep < sweeps do
    changed := false;
    incr sweep;
    for i = 0 to n - 1 do
      let s, wl, wu = inst.sets.(i) in
      (* Feasible interval for x_i. *)
      let lo =
        Bitset.fold
          (fun e acc -> Float.max acc (1. -. (cover_of.(e) -. x.(i))))
          s 0.
      in
      let lo = clamp 0. 1. lo in
      let rest = !u_dot -. (wu *. x.(i)) in
      (* d/dxi [ wl*xi - (rest + wu*xi)^2 ] = wl - 2*wu*(rest + wu*xi) *)
      let target =
        if wu > 1e-12 then ((wl /. (2. *. wu)) -. rest) /. wu
        else if wl > 0. then 1.
        else lo
      in
      let x_new = clamp lo 1. target in
      if Float.abs (x_new -. x.(i)) > tol then begin
        let delta = x_new -. x.(i) in
        Bitset.iter (fun e -> cover_of.(e) <- cover_of.(e) +. delta) s;
        u_dot := !u_dot +. (wu *. delta);
        x.(i) <- x_new;
        changed := true
      end
    done
  done

let solve ?(iters = 8) inst =
  ignore iters;
  let n = Array.length inst.sets in
  let cov = covering_sets inst in
  (* Multi-start: the all-ones point plus greedy integer covers by three
     different priorities; each start is feasible whenever the instance is
     coverable, and ascent preserves feasibility. *)
  let greedy_cover score =
    let x = Array.make n 0. in
    let covered = Array.make inst.universe false in
    let remaining = ref inst.universe in
    let progress = ref true in
    while !remaining > 0 && !progress do
      progress := false;
      let best = ref None in
      Array.iteri
        (fun i (s, wl, wu) ->
          if x.(i) = 0. then begin
            let gain =
              Bitset.fold (fun e acc -> if covered.(e) then acc else acc + 1) s 0
            in
            if gain > 0 then
              let sc = score gain wl wu in
              match !best with
              | Some (_, bs) when bs >= sc -> ()
              | _ -> best := Some (i, sc)
          end)
        inst.sets;
      match !best with
      | None -> ()
      | Some (i, _) ->
        progress := true;
        x.(i) <- 1.;
        let s, _, _ = inst.sets.(i) in
        Bitset.iter
          (fun e ->
            if not covered.(e) then begin
              covered.(e) <- true;
              decr remaining
            end)
          s
    done;
    x
  in
  let starts =
    [
      Array.make n 1.0;
      greedy_cover (fun gain wl _ -> (wl +. 1e-9) *. float_of_int gain);
      greedy_cover (fun gain _ wu -> float_of_int gain /. (wu +. 1e-3));
      greedy_cover (fun gain _ _ -> float_of_int gain);
    ]
  in
  let best = ref None in
  List.iter
    (fun x ->
      coordinate_ascent inst cov x;
      let obj = objective inst x in
      match !best with
      | Some (_, o) when o >= obj -> ()
      | _ -> best := Some (x, obj))
    starts;
  match !best with
  | None -> { x = [||]; objective = 0.; feasible = inst.universe = 0 }
  | Some (x, obj) -> { x; objective = obj; feasible = coverage inst x }
