lib/core/topk.ml: Array List Pruning Psst_util Query Relax Structural Verify
