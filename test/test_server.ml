(* The resident query server (DESIGN.md §11): served answers must be
   bit-identical to offline Query.run at every pool size, backpressure
   and deadlines must reject with the documented retryable codes, a
   graceful stop must drain every admitted request, and corrupted frames
   must produce one Malformed reply plus a "proto" warning — never a
   crash and never a wedged server. *)

module P = Psst_proto
module Client = Psst_client
module Server = Psst_server
module Prng = Psst_util.Prng

let fast_bounds = { Bounds.default_config with mc_samples = 400 }
let fast_smp = { Verify.default_config with tau = 0.3 }

(* Verification cost scales like 1/tau^2, so this config makes each query
   slow enough for the backpressure and deadline tests to observe a busy
   batcher without any sleeps in the server. *)
let slow_smp = { Verify.default_config with tau = 0.05 }

let make_db seed n =
  let ds =
    Generator.generate
      { Generator.default_params with num_graphs = n; seed; min_vertices = 6;
        max_vertices = 10; motif_edges = 3 }
  in
  let db =
    Query.index_database
      ~mining:{ Selection.default_params with max_edges = 2; beta = 0.2 }
      ~bounds:fast_bounds ds.graphs
  in
  (ds, db)

let base_config =
  { Query.default_config with epsilon = 0.4; delta = 1; verifier = `Smp fast_smp }

let with_server ?(domains = 1) ?(queue_cap = 128) ?(deadline_ms = 0.)
    ?(batch_max = 32) db f =
  let path = Filename.temp_file "psst_test_srv" ".sock" in
  let srv =
    Server.start
      {
        (Server.default_config (P.Unix_socket path)) with
        Server.domains;
        queue_cap;
        deadline_ms;
        batch_max;
      }
      db
  in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      try Sys.remove path with Sys_error _ -> ())
    (fun () -> f srv)

let with_client srv f =
  let c = Client.connect (Server.endpoint srv) in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

(* --- differential: served = offline, at 1 and 4 domains --- *)

let check_differential ~domains () =
  let ds, db = make_db 211 25 in
  let rng = Prng.make 31 in
  let queries =
    List.init 3 (fun _ -> fst (Generator.extract_query rng ds ~edges:4))
  in
  let offline = List.map (fun q -> Query.run db q base_config) queries in
  with_server ~domains db (fun srv ->
      with_client srv (fun c ->
          let replies = Client.run_all c queries base_config in
          List.iteri
            (fun i (off : Query.outcome) ->
              match replies.(i) with
              | P.Answer { id; answers; stats } ->
                Alcotest.(check int) (Printf.sprintf "query %d id" i) i id;
                Alcotest.(check (list int))
                  (Printf.sprintf "query %d answers @ %d domains" i domains)
                  off.Query.answers answers;
                Alcotest.(check bool)
                  (Printf.sprintf "query %d pruning counters" i)
                  true
                  (stats = P.stats_of_query off.Query.stats)
              | _ -> Alcotest.failf "query %d: expected Answer" i)
            offline))

let test_differential_sequential () = check_differential ~domains:1 ()
let test_differential_parallel () = check_differential ~domains:4 ()

let test_differential_topk () =
  let ds, db = make_db 223 20 in
  let rng = Prng.make 37 in
  let q, _ = Generator.extract_query rng ds ~edges:4 in
  let offline = Topk.run db q ~k:3 base_config in
  let expect =
    List.map (fun (h : Topk.hit) -> (h.graph, h.ssp)) offline.Topk.hits
  in
  with_server db (fun srv ->
      with_client srv (fun c ->
          match
            Client.rpc c (P.Run_topk { id = 5; query = q; k = 3; config = base_config })
          with
          | P.Topk_answer { id; hits } ->
            Alcotest.(check int) "id echoed" 5 id;
            Alcotest.(check bool) "top-k hits identical" true (hits = expect)
          | _ -> Alcotest.fail "expected Topk_answer"))

(* --- control plane --- *)

let test_ping_and_stats () =
  let _, db = make_db 227 10 in
  with_server db (fun srv ->
      with_client srv (fun c ->
          Client.ping c;
          let json = Client.stats_json c in
          Alcotest.(check bool) "stats is a JSON object" true
            (String.length json > 2 && json.[0] = '{');
          let contains hay needle =
            let n = String.length needle and h = String.length hay in
            let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
            go 0
          in
          Alcotest.(check bool) "registry includes server counters" true
            (contains json "server.requests")))

let test_tcp_endpoint_port_resolution () =
  let _, db = make_db 229 10 in
  let srv =
    Server.start
      { (Server.default_config (P.Tcp ("127.0.0.1", 0))) with Server.domains = 1 }
      db
  in
  Fun.protect
    ~finally:(fun () -> Server.stop srv)
    (fun () ->
      (match Server.endpoint srv with
      | P.Tcp (_, port) ->
        Alcotest.(check bool) "kernel assigned a real port" true (port > 0)
      | P.Unix_socket _ -> Alcotest.fail "expected a TCP endpoint");
      with_client srv (fun c -> Client.ping c))

(* --- backpressure and deadlines --- *)

let slow_config = { base_config with verifier = `Smp slow_smp }

let test_queue_full_rejection () =
  let ds, db = make_db 233 15 in
  let rng = Prng.make 41 in
  let q, _ = Generator.extract_query rng ds ~edges:4 in
  with_server ~queue_cap:1 ~batch_max:1 db (fun srv ->
      with_client srv (fun c ->
          let n = 16 in
          let queries = List.init n (fun _ -> q) in
          let replies = Client.run_all c queries slow_config in
          let answered = ref 0 and full = ref 0 in
          Array.iter
            (function
              | P.Answer _ -> incr answered
              | P.Error_reply { code = P.Queue_full; _ } -> incr full
              | P.Error_reply { code; _ } ->
                Alcotest.failf "unexpected reject: %s" (P.error_code_name code)
              | _ -> Alcotest.fail "unexpected reply kind")
            replies;
          Alcotest.(check int) "every request got a reply" n (!answered + !full);
          Alcotest.(check bool) "some requests were answered" true (!answered >= 1);
          Alcotest.(check bool) "a full queue rejected the rest" true (!full >= 1);
          Alcotest.(check bool) "queue_full is retryable" true
            (P.error_code_retryable P.Queue_full)))

let test_deadline_rejection () =
  let ds, db = make_db 239 15 in
  let rng = Prng.make 43 in
  let q, _ = Generator.extract_query rng ds ~edges:4 in
  with_server ~deadline_ms:0.01 ~batch_max:1 db (fun srv ->
      with_client srv (fun c ->
          let n = 6 in
          let queries = List.init n (fun _ -> q) in
          let replies = Client.run_all c queries slow_config in
          let deadline = ref 0 in
          Array.iter
            (function
              | P.Answer _ -> ()
              | P.Error_reply { code = P.Deadline; _ } -> incr deadline
              | P.Error_reply { code; _ } ->
                Alcotest.failf "unexpected reject: %s" (P.error_code_name code)
              | _ -> Alcotest.fail "unexpected reply kind")
            replies;
          Alcotest.(check bool)
            "queued requests missed the 10 microsecond deadline" true
            (!deadline >= 1)))

(* --- graceful drain --- *)

let test_stop_drains_inflight () =
  let ds, db = make_db 241 15 in
  let rng = Prng.make 47 in
  let queries =
    List.init 5 (fun _ -> fst (Generator.extract_query rng ds ~edges:4))
  in
  let offline = List.map (fun q -> (Query.run db q slow_config).Query.answers) queries in
  let path = Filename.temp_file "psst_test_drain" ".sock" in
  let srv =
    Server.start { (Server.default_config (P.Unix_socket path)) with batch_max = 1 } db
  in
  let replies = ref [||] in
  let client =
    Thread.create
      (fun () ->
        let c = Client.connect (Server.endpoint srv) in
        Fun.protect
          ~finally:(fun () -> Client.close c)
          (fun () -> replies := Client.run_all c queries slow_config))
      ()
  in
  (* Give the reader time to admit the burst, then stop mid-processing:
     the drain barrier must answer every admitted request before stop
     returns. *)
  Thread.delay 0.05;
  Server.stop srv;
  Alcotest.(check bool) "stop completed" true (Server.stopped srv);
  Thread.join client;
  (try Sys.remove path with Sys_error _ -> ());
  Alcotest.(check int) "every request got a reply" 5 (Array.length !replies);
  List.iteri
    (fun i off ->
      match !replies.(i) with
      | P.Answer { answers; _ } ->
        Alcotest.(check (list int))
          (Printf.sprintf "drained answer %d is bit-identical" i)
          off answers
      | P.Error_reply { code = P.Shutdown; _ } ->
        (* Raced past the admission close: explicitly rejected, retryable. *)
        Alcotest.(check bool) "shutdown is retryable" true
          (P.error_code_retryable P.Shutdown)
      | _ -> Alcotest.failf "request %d: expected Answer or Shutdown" i)
    offline;
  Alcotest.(check int) "server counted every reply" 5 (Server.served srv)

(* --- socket-level fuzz: corrupted frames against a live server --- *)

let warn_proto_count () =
  Psst_obs.counter_value (Psst_obs.counter "warn.proto")

let expect_malformed_then_recover srv corrupt =
  let before = warn_proto_count () in
  with_client srv (fun c ->
      corrupt c;
      (match Client.read_reply c with
      | P.Error_reply { code = P.Malformed; _ } -> ()
      | r ->
        Alcotest.failf "expected Malformed reply, got %s"
          (match r with
          | P.Pong -> "Pong"
          | P.Answer _ -> "Answer"
          | P.Topk_answer _ -> "Topk_answer"
          | P.Stats_json _ -> "Stats_json"
          | P.Health_reply _ -> "Health_reply"
          | P.Error_reply _ -> "Error_reply"
          | P.Ingest_ack _ -> "Ingest_ack"
          | P.Delta_frame _ -> "Delta_frame")));
  Alcotest.(check bool) "a proto warning was recorded" true
    (warn_proto_count () > before);
  (* The connection is gone but the server must keep serving. *)
  with_client srv (fun c -> Client.ping c)

let test_fuzzed_frames_never_crash () =
  let ds, db = make_db 251 15 in
  let rng = Prng.make 53 in
  let q, _ = Generator.extract_query rng ds ~edges:4 in
  let frame = P.encode_request (P.Run { id = 0; query = q; config = base_config }) in
  with_server db (fun srv ->
      (* Bad magic. *)
      expect_malformed_then_recover srv (fun c ->
          Client.send_raw c ("XSSTRPC\x00" ^ String.sub frame 8 (String.length frame - 8)));
      (* Flipped payload byte: checksum mismatch. *)
      expect_malformed_then_recover srv (fun c ->
          let b = Bytes.of_string frame in
          let pos = P.header_bytes + 3 in
          Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x10));
          Client.send_raw c (Bytes.to_string b));
      (* Flipped CRC byte. *)
      expect_malformed_then_recover srv (fun c ->
          let b = Bytes.of_string frame in
          Bytes.set b 20 (Char.chr (Char.code (Bytes.get b 20) lxor 0xFF));
          Client.send_raw c (Bytes.to_string b));
      (* Truncated frame then EOF: the half-close turns a blocked read
         into a detected truncation, not a hang. *)
      expect_malformed_then_recover srv (fun c ->
          Client.send_raw c (String.sub frame 0 (String.length frame - 5));
          Client.half_close c);
      (* Unsupported version. *)
      expect_malformed_then_recover srv (fun c ->
          let b = Bytes.of_string frame in
          Bytes.set_int32_le b 8 99l;
          Client.send_raw c (Bytes.to_string b));
      (* And after all that abuse, real queries still run. *)
      with_client srv (fun c ->
          match Client.rpc c (P.Run { id = 9; query = q; config = base_config }) with
          | P.Answer { id; answers; _ } ->
            Alcotest.(check int) "id echoed" 9 id;
            Alcotest.(check (list int)) "answers still bit-identical"
              (Query.run db q base_config).Query.answers answers
          | _ -> Alcotest.fail "expected Answer after fuzzing"))

let suite =
  [
    Alcotest.test_case "served = offline @ 1 domain" `Slow
      test_differential_sequential;
    Alcotest.test_case "served = offline @ 4 domains" `Slow
      test_differential_parallel;
    Alcotest.test_case "served top-k = offline top-k" `Slow
      test_differential_topk;
    Alcotest.test_case "ping and stats round-trip" `Quick test_ping_and_stats;
    Alcotest.test_case "tcp port 0 resolves" `Quick
      test_tcp_endpoint_port_resolution;
    Alcotest.test_case "full queue rejects with Queue_full" `Slow
      test_queue_full_rejection;
    Alcotest.test_case "stale requests rejected by deadline" `Slow
      test_deadline_rejection;
    Alcotest.test_case "stop drains in-flight requests" `Slow
      test_stop_drains_inflight;
    Alcotest.test_case "fuzzed frames: reply, warn, keep serving" `Slow
      test_fuzzed_frames_never_crash;
  ]
