module Bitset = Psst_util.Bitset

let is_hitting_set sets t =
  List.for_all (fun s -> not (Bitset.disjoint s t)) sets

let is_minimal_hitting_set sets t =
  is_hitting_set sets t
  && Bitset.fold
       (fun e acc ->
         acc
         &&
         let t' = Bitset.copy t in
         Bitset.remove t' e;
         not (is_hitting_set sets t'))
       t true

(* Berge's algorithm: fold hyperedges one at a time, maintaining the set of
   minimal transversals of the prefix. *)
let minimal_hitting_sets ?(cap = 256) sets =
  match sets with
  | [] -> []
  | first :: _ ->
    let capacity = Bitset.capacity first in
    List.iter
      (fun s ->
        if Bitset.is_empty s then
          invalid_arg "Transversal.minimal_hitting_sets: empty hyperedge")
      sets;
    let minimize candidates =
      (* Keep inclusion-minimal candidates; sort by cardinality so any
         superset appears after its subset. *)
      let sorted =
        List.sort
          (fun a b -> compare (Bitset.cardinal a) (Bitset.cardinal b))
          candidates
      in
      let kept =
        List.fold_left
          (fun kept c ->
            if List.exists (fun k -> Bitset.subset k c) kept then kept
            else c :: kept)
          [] sorted
      in
      List.rev kept
    in
    let step transversals s =
      let hit, missed = List.partition (fun t -> not (Bitset.disjoint t s)) transversals in
      let extended =
        List.concat_map
          (fun t ->
            Bitset.fold
              (fun e acc ->
                let t' = Bitset.copy t in
                Bitset.add t' e;
                t' :: acc)
              s [])
          missed
      in
      let merged = minimize (hit @ extended) in
      if List.length merged > cap then
        (* Keep the smallest transversals; they hit most aggressively and
           stay minimal w.r.t. each other. *)
        List.filteri (fun i _ -> i < cap)
          (List.sort (fun a b -> compare (Bitset.cardinal a) (Bitset.cardinal b)) merged)
      else merged
    in
    let init =
      match sets with
      | s :: _ ->
        Bitset.fold
          (fun e acc ->
            let t = Bitset.create capacity in
            Bitset.add t e;
            t :: acc)
          s []
      | [] -> []
    in
    List.fold_left step init (List.tl sets)
