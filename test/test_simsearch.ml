module Prng = Psst_util.Prng

let square () =
  Lgraph.create ~vlabels:[| 0; 1; 0; 1 |]
    ~edges:[ (0, 1, 0); (1, 2, 0); (2, 3, 0); (3, 0, 0) ]

(* --- Relaxation --- *)

let test_relax_delta0 () =
  let q = square () in
  let rqs, status = Relax.relaxed_set q ~delta:0 in
  Alcotest.(check int) "single graph" 1 (List.length rqs);
  Alcotest.(check bool) "complete" true (status = `Complete);
  Alcotest.(check bool) "is q itself" true
    (Lgraph.equal_structure (List.hd rqs) q)

let test_relax_delta1_square () =
  let q = square () in
  let rqs, _ = Relax.relaxed_set q ~delta:1 in
  (* Square minus any edge: all four deletions give an isomorphic path
     0-1-0-1, so dedup leaves exactly... the two paths alternate labels
     0,1,0,1 vs 1,0,1,0 which are isomorphic -> 1 relaxed graph. *)
  Alcotest.(check int) "deduped" 1 (List.length rqs);
  Alcotest.(check int) "3 edges" 3 (Lgraph.num_edges (List.hd rqs))

let test_relax_delta_exceeds () =
  let q = square () in
  let rqs, _ = Relax.relaxed_set q ~delta:4 in
  Alcotest.(check int) "single empty graph" 1 (List.length rqs);
  Alcotest.(check int) "no edges" 0 (Lgraph.num_edges (List.hd rqs))

let test_relax_drops_isolated () =
  let star =
    Lgraph.create ~vlabels:[| 0; 1; 2 |] ~edges:[ (0, 1, 0); (0, 2, 0) ]
  in
  let rqs, _ = Relax.relaxed_set star ~delta:1 in
  List.iter
    (fun rq ->
      Alcotest.(check int) "two vertices after drop" 2 (Lgraph.num_vertices rq))
    rqs;
  Alcotest.(check int) "two distinct relaxations" 2 (List.length rqs)

let test_relax_cap_truncates () =
  let rng = Prng.make 3 in
  let q = Tgen.random_connected_graph rng ~n:8 ~extra:6 ~vl:2 ~el:2 in
  let _, status = Relax.relaxed_set ~cap:5 q ~delta:3 in
  Alcotest.(check bool) "truncated flagged" true (status = `Truncated)

let prop_relaxed_embed_in_query =
  QCheck.Test.make ~name:"every relaxed query embeds in q" ~count:80
    QCheck.small_int
    (fun seed ->
      let rng = Prng.make (seed + 3) in
      let q = Tgen.random_connected_graph rng ~n:5 ~extra:2 ~vl:2 ~el:2 in
      let delta = 1 + Prng.int rng 2 in
      let rqs, _ = Relax.relaxed_set q ~delta in
      List.for_all (fun rq -> Vf2.exists rq q) rqs)

let prop_relax_lemma1_consistency =
  QCheck.Test.make
    ~name:"dis(q,g) <= delta iff some rq embeds (Lemma 1 basis)" ~count:60
    QCheck.small_int
    (fun seed ->
      let rng = Prng.make (seed + 17) in
      let q = Tgen.random_connected_graph rng ~n:4 ~extra:1 ~vl:2 ~el:1 in
      let g = Tgen.random_connected_graph rng ~n:6 ~extra:3 ~vl:2 ~el:1 in
      let delta = Prng.int rng 3 in
      let rqs, status = Relax.relaxed_set q ~delta in
      status <> `Complete
      || Distance.within q g ~delta = List.exists (fun rq -> Vf2.exists rq g) rqs)

(* --- Structural pruning --- *)

let small_db rng n =
  Array.init n (fun _ -> Tgen.random_connected_graph rng ~n:7 ~extra:3 ~vl:3 ~el:2)

let test_structural_no_false_dismissals () =
  let rng = Prng.make 11 in
  let db = small_db rng 20 in
  let features =
    Selection.select db { Selection.default_params with beta = 0.2; max_edges = 2 }
  in
  let index = Structural.build db features ~emb_cap:32 in
  for trial = 0 to 9 do
    let rng_q = Prng.make (trial + 100) in
    let q = Tgen.random_connected_graph rng_q ~n:4 ~extra:1 ~vl:3 ~el:2 in
    let delta = Prng.int rng_q 3 in
    let cands = Structural.candidates index ~skeleton:(fun gi -> db.(gi)) q ~delta in
    (* Every true match must be in the candidate set. *)
    Array.iteri
      (fun gi g ->
        if Distance.within q g ~delta then
          Alcotest.(check bool)
            (Printf.sprintf "trial %d graph %d retained" trial gi)
            true (List.mem gi cands))
      db
  done

let test_structural_prunes_something () =
  let rng = Prng.make 19 in
  let db = small_db rng 30 in
  let features =
    Selection.select db { Selection.default_params with beta = 0.2; max_edges = 2 }
  in
  let index = Structural.build db features ~emb_cap:32 in
  (* A query with an exotic label histogram should prune heavily. *)
  let q =
    Lgraph.create ~vlabels:[| 0; 1; 2; 0 |]
      ~edges:[ (0, 1, 0); (1, 2, 1); (2, 3, 0); (0, 3, 1) ]
  in
  let cands = Structural.candidates index ~skeleton:(fun gi -> db.(gi)) q ~delta:0 in
  Alcotest.(check bool) "some pruning happened" true
    (List.length cands < Array.length db)

let test_structural_index_size () =
  let rng = Prng.make 5 in
  let db = small_db rng 6 in
  let features =
    Selection.select db { Selection.default_params with beta = 0.2; max_edges = 2 }
  in
  let index = Structural.build db features ~emb_cap:32 in
  Alcotest.(check int) "cells = features x graphs"
    (Structural.num_features index * 6)
    (Structural.size_cells index)

let suite =
  [
    Alcotest.test_case "relax delta=0" `Quick test_relax_delta0;
    Alcotest.test_case "relax square delta=1" `Quick test_relax_delta1_square;
    Alcotest.test_case "relax delta >= |E|" `Quick test_relax_delta_exceeds;
    Alcotest.test_case "relax drops isolated" `Quick test_relax_drops_isolated;
    Alcotest.test_case "relax cap truncates" `Quick test_relax_cap_truncates;
    QCheck_alcotest.to_alcotest prop_relaxed_embed_in_query;
    QCheck_alcotest.to_alcotest prop_relax_lemma1_consistency;
    Alcotest.test_case "structural: no false dismissals" `Slow
      test_structural_no_false_dismissals;
    Alcotest.test_case "structural: prunes" `Quick test_structural_prunes_something;
    Alcotest.test_case "structural: index size" `Quick test_structural_index_size;
  ]
