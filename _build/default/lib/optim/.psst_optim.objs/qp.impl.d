lib/optim/qp.ml: Array Float List Psst_util
