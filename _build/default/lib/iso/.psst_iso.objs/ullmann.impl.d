lib/iso/ullmann.ml: Array Embedding Lgraph List Psst_util
