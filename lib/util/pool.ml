type t = {
  size : int;
  lock : Mutex.t;
  pending : (unit -> unit) Queue.t;
  wake : Condition.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

(* Scheduler observability (DESIGN.md §10): how many chunks each
   parallel [iter_range] distributed and what fraction the calling
   domain ended up executing itself — 1.0 means the workers never got
   to steal (pool starved or work too small), 1/size means perfect
   balance. *)
let m_parallel_runs = Psst_obs.counter "pool.parallel_runs"
let m_chunks = Psst_obs.counter "pool.chunks"
let h_caller_share = Psst_obs.histogram "pool.caller_share"

let default_domains () = Domain.recommended_domain_count ()

(* Workers block on [wake] until a job (or shutdown) arrives; on shutdown
   they drain the queue before exiting so submitted work is never lost. *)
let rec worker_loop pool =
  Mutex.lock pool.lock;
  while Queue.is_empty pool.pending && not pool.closed do
    Condition.wait pool.wake pool.lock
  done;
  if Queue.is_empty pool.pending then Mutex.unlock pool.lock
  else begin
    let job = Queue.pop pool.pending in
    Mutex.unlock pool.lock;
    job ();
    worker_loop pool
  end

let create ?(domains = 1) () =
  let pool =
    {
      size = max 1 domains;
      lock = Mutex.create ();
      pending = Queue.create ();
      wake = Condition.create ();
      closed = false;
      workers = [];
    }
  in
  pool.workers <-
    List.init (pool.size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let size pool = pool.size

(* Helpers that find the pool closed just run the job in the caller: the
   call sites only use submission to add parallelism, never for
   correctness. *)
let submit pool job =
  Mutex.lock pool.lock;
  if pool.closed then begin
    Mutex.unlock pool.lock;
    job ()
  end
  else begin
    Queue.push job pool.pending;
    Condition.signal pool.wake;
    Mutex.unlock pool.lock
  end

let iter_range pool ?chunk n f =
  if n > 0 then
    if pool.size <= 1 || n = 1 then
      for i = 0 to n - 1 do
        f i
      done
    else begin
      let chunk =
        match chunk with
        | Some c -> max 1 c
        | None -> max 1 (n / (4 * pool.size))
      in
      let nchunks = ((n + chunk - 1) / chunk : int) in
      let next = Atomic.make 0 in
      let remaining = Atomic.make nchunks in
      let failure = Atomic.make None in
      let fin_lock = Mutex.create () in
      let fin = Condition.create () in
      let nparticipants = min pool.size nchunks in
      (* Chunks executed per participant: slot [pid] is written by the one
         domain running that participant's loop, and read by the caller
         only after [remaining] hits zero, which orders the writes. *)
      let claimed = Array.make nparticipants 0 in
      (* Every participant claims chunks off [next] until none are left;
         the one that retires the last chunk wakes the waiting caller.
         Writes made by the chunks happen-before the caller's return via
         the [remaining] atomic. *)
      let run_chunks pid =
        let continue = ref true in
        while !continue do
          let c = Atomic.fetch_and_add next 1 in
          if c >= nchunks then continue := false
          else begin
            claimed.(pid) <- claimed.(pid) + 1;
            (try
               for i = c * chunk to min n ((c + 1) * chunk) - 1 do
                 f i
               done
             with e ->
               let bt = Printexc.get_raw_backtrace () in
               ignore (Atomic.compare_and_set failure None (Some (e, bt))));
            if Atomic.fetch_and_add remaining (-1) = 1 then begin
              Mutex.lock fin_lock;
              Condition.broadcast fin;
              Mutex.unlock fin_lock
            end
          end
        done
      in
      for pid = 1 to nparticipants - 1 do
        submit pool (fun () -> run_chunks pid)
      done;
      run_chunks 0;
      Mutex.lock fin_lock;
      while Atomic.get remaining > 0 do
        Condition.wait fin fin_lock
      done;
      Mutex.unlock fin_lock;
      Psst_obs.incr m_parallel_runs;
      Psst_obs.add m_chunks nchunks;
      Psst_obs.observe h_caller_share
        (float_of_int claimed.(0) /. float_of_int nchunks);
      match Atomic.get failure with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end

let map_array pool ?chunk f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    iter_range pool ?chunk n (fun i -> out.(i) <- Some (f a.(i)));
    Array.map (function Some x -> x | None -> assert false) out
  end

let shutdown pool =
  Mutex.lock pool.lock;
  pool.closed <- true;
  Condition.broadcast pool.wake;
  Mutex.unlock pool.lock;
  List.iter Domain.join pool.workers;
  pool.workers <- []

let with_pool ?domains f =
  let pool = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
