lib/iso/embedding.mli: Format Psst_util
