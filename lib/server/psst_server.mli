(** Resident query server (DESIGN.md §11).

    Loads a database once and answers {!Psst_proto} requests over a
    Unix-domain or TCP socket for the life of the process — the
    index-resident serving model the succinct-index literature assumes
    (no per-query process start, mining, or PMI build).

    Execution model: one accept thread, one lightweight reader thread per
    connection, and a single batcher thread that owns the domain pool.
    Readers admit [Run]/[Run_topk] requests into a bounded queue
    (explicit backpressure: a full queue yields a retryable
    [`Queue_full`] error reply, never an unbounded buffer); the batcher
    drains the queue in micro-batches and executes them with
    {!Query.run_batch_on} on the shared pool, so concurrent requests
    interleave across domains while each answer stays bit-identical to an
    offline {!Query.run}. [Ping]/[Get_stats] are answered inline by the
    reader and never queue.

    Deadlines bound queue wait: a request that has already waited longer
    than [deadline_ms] when the batcher pops it is answered with a
    [`Deadline`] error instead of being executed (verification is not
    preempted once started).

    Shutdown ({!stop}) is a graceful drain: admission closes (late
    arrivals get a retryable [`Shutdown`] error), every already-queued
    request is answered, then connections are closed and the pool is
    released. A malformed frame on a connection produces one [`Malformed`]
    error reply and a ["proto"] warning event, then closes that
    connection; the server itself keeps serving. *)

type config = {
  endpoint : Psst_proto.endpoint;
  domains : int;  (** domain-pool size for verification fan-out *)
  queue_cap : int;  (** admission queue bound (backpressure) *)
  deadline_ms : float;  (** max queue wait; [0.] disables deadlines *)
  verify_budget_ms : float;
      (** per-batch verification budget (DESIGN.md §12): candidates whose
          verification would start after the budget elapses are answered
          from their PMI bounds and the reply is flagged [degraded] — a
          superset-safe answer under overload instead of an ever-growing
          latency tail. [0.] disables budgets (exact answers always). *)
  batch_max : int;  (** micro-batch size cap *)
  trace_cap : int;  (** per-query traces retained for [--stats-json] *)
  cache_cap : int;
      (** cross-query verification cache ({!Qcache}) value-table bound;
          [0] disables the cache. Cached answers are bit-identical to
          cold ones (the cache memoises deterministic artifacts only) and
          the cache self-invalidates when the database changes, so the
          only trade-off is memory. *)
}

(** Unix socket, 1 domain, queue of 128, no deadline, no verification
    budget, batches of 32, 256 traces, cache of 16384 entries. *)
val default_config : Psst_proto.endpoint -> config

type t

(** [start config db] binds the endpoint and spawns the serving threads.
    Raises [Unix.Unix_error] when the endpoint cannot be bound. SIGPIPE is
    set to ignore (a client hanging up mid-reply must not kill the
    process). *)
val start : config -> Query.database -> t

(** The bound endpoint — for [Tcp (host, 0)] this carries the actual
    kernel-assigned port. *)
val endpoint : t -> Psst_proto.endpoint

(** Graceful drain as described above. Idempotent; blocks until every
    queued request is answered and all threads have joined. *)
val stop : t -> unit

(** True once {!stop} has completed. *)
val stopped : t -> bool

(** Most recent per-query traces (oldest first, at most [trace_cap]). *)
val traces : t -> Psst_obs.Trace.t list

(** Requests answered since {!start} (including error replies). *)
val served : t -> int

(** The snapshot the [Get_health] RPC answers from (also available
    in-process, e.g. for tests and supervisors). *)
val health : t -> Psst_proto.health
