(* Chaos harness (DESIGN.md §12): deterministic fault injection, the
   self-healing salvage loader, crash atomicity under SIGKILL, and the
   serving stack's degradation invariant — under armed faults every reply
   is (a) correct and exact, (b) correct-to-bounds and flagged degraded,
   or (c) a clean retryable error. Never a hang, a crash, or a silently
   wrong answer; with faults disarmed, everything is bit-identical to
   offline Query.run.

   Faults are process-global state: every arming test disarms in a
   Fun.protect finally so no fault leaks into the other suites. *)

module F = Psst_fault
module P = Psst_proto
module S = Psst_store
module Client = Psst_client
module Server = Psst_server
module Prng = Psst_util.Prng

let counter_delta c f =
  let before = Psst_obs.counter_value c in
  let r = f () in
  (r, Psst_obs.counter_value c - before)

let with_tmp f =
  let path = Filename.temp_file "psst_chaos" ".store" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path; path ^ ".tmp" ])
    (fun () -> f path)

let read_bytes path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_bytes path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let expect_store_error what f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Store_error" what
  | exception S.Store_error _ -> ()
  | exception e ->
    Alcotest.failf "%s: expected Store_error, got %s" what
      (Printexc.to_string e)

(* --- the fault registry itself --- *)

let fire_pattern site n =
  List.init n (fun _ -> Option.is_some (F.fire site))

let test_fault_determinism () =
  let s = F.site "chaos.unit" in
  let record seed =
    F.arm ~seed [ ("chaos.unit", F.Fail, 0.3) ];
    Fun.protect ~finally:F.disarm (fun () -> fire_pattern s 200)
  in
  let a = record 99 in
  Alcotest.(check bool) "some consultations fire" true (List.mem true a);
  Alcotest.(check bool) "some consultations pass" true (List.mem false a);
  Alcotest.(check (list bool)) "same seed, same schedule" a (record 99);
  Alcotest.(check bool) "different seed, different schedule" false
    (a = record 100);
  (* The schedule is per-site: consulting another armed site between
     consultations must not perturb it. *)
  F.arm ~seed:99
    [ ("chaos.unit", F.Fail, 0.3); ("chaos.other", F.Fail, 0.5) ];
  let interleaved =
    Fun.protect ~finally:F.disarm (fun () ->
        let other = F.site "chaos.other" in
        List.init 200 (fun _ ->
            ignore (F.fire other);
            Option.is_some (F.fire s)))
  in
  Alcotest.(check (list bool)) "independent of other sites" a interleaved

let test_disarmed_is_silent () =
  let s = F.site "chaos.unit" in
  Alcotest.(check bool) "disarmed by default" false (F.enabled ());
  for _ = 1 to 1000 do
    match F.fire s with
    | None -> ()
    | Some _ -> Alcotest.fail "disarmed site fired"
  done;
  (* inject is a no-op when disarmed *)
  F.inject s

let test_fires_are_metered () =
  let s = F.site "chaos.metered" in
  F.arm ~seed:1 [ ("chaos.metered", F.Fail, 1.) ];
  let (), fired =
    counter_delta
      (Psst_obs.counter "fault.chaos.metered")
      (fun () ->
        Fun.protect ~finally:F.disarm (fun () ->
            for _ = 1 to 7 do
              ignore (F.fire s)
            done))
  in
  Alcotest.(check int) "every firing bumps fault.<site>" 7 fired

let test_parse_plan () =
  Alcotest.(check bool) "bare fail" true
    (F.parse_plan "a.b=fail" = [ ("a.b", F.Fail, 1.) ]);
  Alcotest.(check bool) "delay with ms and prob" true
    (F.parse_plan "x=delay:25@0.5" = [ ("x", F.Delay 0.025, 0.5) ]);
  Alcotest.(check bool) "multi-entry" true
    (F.parse_plan "a=partial@0.25, b=bitflip"
    = [ ("a", F.Partial_io, 0.25); ("b", F.Bitflip, 1.) ]);
  let bad spec =
    match F.parse_plan spec with
    | _ -> Alcotest.failf "%S: expected Failure" spec
    | exception Failure _ -> ()
  in
  bad "nonsense";
  bad "a=explode";
  bad "a=fail@2";
  bad "a=delay:-5"

let test_arm_from_env () =
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "PSST_FAULTS" "";
      F.disarm ())
    (fun () ->
      Unix.putenv "PSST_FAULTS" "";
      Alcotest.(check bool) "empty spec does not arm" false (F.arm_from_env ());
      Unix.putenv "PSST_FAULTS" "chaos.env=fail@0.5";
      Unix.putenv "PSST_FAULT_SEED" "7";
      Alcotest.(check bool) "plan arms" true (F.arm_from_env ());
      Alcotest.(check bool) "enabled" true (F.enabled ());
      F.disarm ();
      Unix.putenv "PSST_FAULTS" "garbage spec";
      match F.arm_from_env () with
      | _ -> Alcotest.fail "malformed spec: expected Failure"
      | exception Failure _ -> ())

(* --- store under fault: atomicity, orphan cleanup, corruption refusal --- *)

let sections_a =
  [ { S.name = "alpha"; payload = "payload one" };
    { S.name = "beta"; payload = String.make 64 'b' } ]

let sections_b =
  [ { S.name = "alpha"; payload = "payload TWO" };
    { S.name = "beta"; payload = String.make 64 'B' } ]

let test_partial_write_leaves_old_intact () =
  with_tmp (fun path ->
      S.write_file path ~kind:S.Database sections_a;
      F.arm ~seed:3 [ ("store.write", F.Partial_io, 1.) ];
      (match
         Fun.protect ~finally:F.disarm (fun () ->
             S.write_file path ~kind:S.Database sections_b)
       with
      | () -> Alcotest.fail "expected Injected from a partial write"
      | exception F.Injected _ -> ());
      Alcotest.(check bool) "orphan tmp left behind" true
        (Sys.file_exists (path ^ ".tmp"));
      (* The next reader gets the OLD data and cleans the orphan. *)
      let back, cleaned =
        counter_delta (Psst_obs.counter "store.tmp_cleaned") (fun () ->
            S.read_file path ~kind:S.Database)
      in
      Alcotest.(check bool) "old sections intact" true (back = sections_a);
      Alcotest.(check int) "orphan cleanup metered" 1 cleaned;
      Alcotest.(check bool) "orphan tmp removed" false
        (Sys.file_exists (path ^ ".tmp")))

let test_bitflipped_write_is_refused_by_readers () =
  with_tmp (fun path ->
      F.arm ~seed:5 [ ("store.write", F.Bitflip, 1.) ];
      Fun.protect ~finally:F.disarm (fun () ->
          S.write_file path ~kind:S.Database sections_a);
      (* The write completed — but its checksums must now refuse it. *)
      expect_store_error "bitflipped store" (fun () ->
          S.read_file path ~kind:S.Database))

let test_read_faults_surface_cleanly () =
  with_tmp (fun path ->
      S.write_file path ~kind:S.Database sections_a;
      F.arm ~seed:8 [ ("store.read", F.Bitflip, 1.) ];
      Fun.protect ~finally:F.disarm (fun () ->
          expect_store_error "bitflipped read" (fun () ->
              S.read_file path ~kind:S.Database));
      F.arm ~seed:8 [ ("store.read", F.Partial_io, 1.) ];
      Fun.protect ~finally:F.disarm (fun () ->
          expect_store_error "truncated read" (fun () ->
              S.read_file path ~kind:S.Database));
      (* disarmed: same file reads fine — the faults were injected, not real *)
      Alcotest.(check bool) "pristine after disarm" true
        (S.read_file path ~kind:S.Database = sections_a))

(* --- self-healing PMI salvage --- *)

let fast_bounds = { Bounds.default_config with mc_samples = 400 }
let fast_smp = { Verify.default_config with tau = 0.3 }
let slow_smp = { Verify.default_config with tau = 0.05 }

let make_db seed n =
  let ds =
    Generator.generate
      { Generator.default_params with num_graphs = n; seed; min_vertices = 6;
        max_vertices = 10; motif_edges = 3 }
  in
  let db =
    Query.index_database
      ~mining:{ Selection.default_params with max_edges = 2; beta = 0.2 }
      ~bounds:fast_bounds ds.graphs
  in
  (ds, db)

let base_config =
  { Query.default_config with epsilon = 0.4; delta = 1; verifier = `Smp fast_smp }

let c_columns = Psst_obs.counter "pmi.columns_built"

let corrupt_section path original name =
  let _, start, stop =
    List.find (fun (n, _, _) -> n = name) (S.section_spans original)
  in
  let b = Bytes.of_string original in
  (* Midpoint of the span: inside the checksummed payload, away from the
     section framing, so exactly this one section is damaged. *)
  let pos = start + ((stop - start) / 2) in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x20));
  write_bytes path (Bytes.to_string b)

let test_salvage_rebuilds_only_damaged_shard () =
  (* 24 graphs and shard width 16: shard 0 holds columns 0..15, shard 1
     columns 16..23. Damaging shard 1 must rebuild exactly 8 columns. *)
  let ds, db = make_db 331 24 in
  with_tmp (fun path ->
      Pmi.save path ~db:ds.graphs db.Query.pmi;
      let pristine = read_bytes path in
      corrupt_section path pristine "pmi.entries.1";
      expect_store_error "plain load refuses the damaged shard" (fun () ->
          Pmi.load path ~db:ds.graphs);
      let salvaged, rebuilt =
        counter_delta c_columns (fun () ->
            Pmi.load ~salvage:true path ~db:ds.graphs)
      in
      Alcotest.(check int) "exactly the damaged shard's columns rebuilt" 8
        rebuilt;
      Alcotest.(check bool) "salvage metered" true
        (Psst_obs.counter_value (Psst_obs.counter "store.salvaged_columns")
        >= 8);
      Alcotest.(check bool) "salvage warning recorded" true
        (Psst_obs.counter_value (Psst_obs.counter "warn.store.salvaged") >= 1);
      (* Bit-identity: build_column is deterministic per (config, db,
         features, gi), so re-saving the salvaged index reproduces the
         pristine file byte for byte. *)
      with_tmp (fun path2 ->
          Pmi.save path2 ~db:ds.graphs salvaged;
          Alcotest.(check bool) "salvaged index re-saves bit-identically" true
            (read_bytes path2 = pristine)))

let test_salvage_cannot_rebuild_metadata () =
  (* The feature / config / layout sections have no rebuild source: a
     salvage load must refuse (callers fall back to a full rebuild). *)
  let ds, db = make_db 337 8 in
  with_tmp (fun path ->
      Pmi.save path ~db:ds.graphs db.Query.pmi;
      let pristine = read_bytes path in
      List.iter
        (fun name ->
          corrupt_section path pristine name;
          expect_store_error (name ^ " is not salvageable") (fun () ->
              Pmi.load ~salvage:true path ~db:ds.graphs))
        [ "pmi.config"; "pmi.features"; "pmi.layout" ])

(* --- degradation: budgets and verification faults, offline --- *)

(* Choose queries that leave candidates for the verifier: degradation is
   only observable when phase 3 has work to cut short. *)
let queries_with_candidates ds db config rng ~want =
  let rec go acc n =
    if List.length acc >= want || n = 0 then List.rev acc
    else
      let q, _ = Generator.extract_query rng ds ~edges:4 in
      let out = Query.run db q config in
      if out.Query.stats.prob_candidates > 0 then go ((q, out) :: acc) (n - 1)
      else go acc (n - 1)
  in
  go [] 40

let test_budget_degrades_to_superset () =
  let ds, db = make_db 311 18 in
  let config = { base_config with verifier = `Smp slow_smp } in
  let picked =
    queries_with_candidates ds db config (Prng.make 17) ~want:2
  in
  Alcotest.(check bool) "found queries with verification work" true
    (picked <> []);
  List.iter
    (fun (q, (exact : Query.outcome)) ->
      (* A budget that is already spent: every candidate degrades. *)
      let out = Query.run ~budget_ms:1e-6 db q config in
      Alcotest.(check int) "all candidates degraded"
        out.Query.stats.prob_candidates out.Query.stats.degraded_candidates;
      List.iter
        (fun a ->
          Alcotest.(check bool)
            (Printf.sprintf "degraded answers keep true answer %d" a)
            true
            (List.mem a out.Query.answers))
        exact.Query.answers;
      (* Pruning phases are untouched by the budget. *)
      Alcotest.(check int) "same candidate count"
        exact.Query.stats.prob_candidates out.Query.stats.prob_candidates;
      (* No budget: bit-identical to the exact run. *)
      let again = Query.run db q config in
      Alcotest.(check (list int)) "no budget, no deviation"
        exact.Query.answers again.Query.answers)
    picked

let test_verify_fault_degrades_to_superset () =
  let ds, db = make_db 317 18 in
  let picked =
    queries_with_candidates ds db base_config (Prng.make 19) ~want:2
  in
  Alcotest.(check bool) "found queries with verification work" true
    (picked <> []);
  F.arm ~seed:23 [ ("verify.sample", F.Fail, 0.02) ];
  Fun.protect ~finally:F.disarm (fun () ->
      List.iter
        (fun (q, (exact : Query.outcome)) ->
          let out = Query.run db q base_config in
          List.iter
            (fun a ->
              Alcotest.(check bool)
                (Printf.sprintf "answer %d survives verify faults" a)
                true
                (List.mem a out.Query.answers))
            exact.Query.answers)
        picked);
  (* Disarmed again: answers return to bit-identical. *)
  List.iter
    (fun (q, (exact : Query.outcome)) ->
      let out = Query.run db q base_config in
      Alcotest.(check (list int)) "disarmed, bit-identical" exact.Query.answers
        out.Query.answers)
    picked

(* --- the verification cache under chaos (DESIGN.md §13) ---

   Faulted and budget-degraded verifications must never leave residue in
   the cache (the compute callback raises or is skipped before the cache
   is consulted, so nothing degraded is stored), a warm cache absorbs
   verification faults entirely (hits draw no samples), and a poisoned
   entry is evicted and recomputed — never served. *)

let test_verify_fault_with_armed_cache () =
  let ds, db = make_db 361 18 in
  let picked =
    queries_with_candidates ds db base_config (Prng.make 47) ~want:2
  in
  Alcotest.(check bool) "found queries with verification work" true
    (picked <> []);
  (* Cold cache under faults: superset invariant, like the uncached path. *)
  let cache = Qcache.create () in
  F.arm ~seed:31 [ ("verify.sample", F.Fail, 0.02) ];
  Fun.protect ~finally:F.disarm (fun () ->
      List.iter
        (fun (q, (exact : Query.outcome)) ->
          let out = Query.run ~cache db q base_config in
          List.iter
            (fun a ->
              Alcotest.(check bool)
                (Printf.sprintf "answer %d survives faults, cache armed" a)
                true
                (List.mem a out.Query.answers))
            exact.Query.answers)
        picked);
  (* Disarmed, same cache: bit-identical — no faulted value was stored. *)
  List.iter
    (fun (q, (exact : Query.outcome)) ->
      let out = Query.run ~cache db q base_config in
      Alcotest.(check (list int)) "disarmed + cache, bit-identical"
        exact.Query.answers out.Query.answers)
    picked;
  (* Warm cache under faults: hits draw no samples, so the fault site is
     never consulted and replies stay exact, not merely superset. *)
  F.arm ~seed:31 [ ("verify.sample", F.Fail, 1.0) ];
  Fun.protect ~finally:F.disarm (fun () ->
      List.iter
        (fun (q, (exact : Query.outcome)) ->
          let out = Query.run ~cache db q base_config in
          Alcotest.(check (list int)) "warm cache absorbs certain faults"
            exact.Query.answers out.Query.answers;
          Alcotest.(check int) "warm replies are not degraded" 0
            out.Query.stats.degraded_candidates)
        picked)

let test_budget_with_armed_cache () =
  let ds, db = make_db 367 18 in
  let config = { base_config with verifier = `Smp slow_smp } in
  let picked = queries_with_candidates ds db config (Prng.make 53) ~want:2 in
  Alcotest.(check bool) "found queries with verification work" true
    (picked <> []);
  let cache = Qcache.create () in
  List.iter
    (fun (q, (exact : Query.outcome)) ->
      (* Spent budget, cold cache: everything degrades, superset holds. *)
      let out = Query.run ~budget_ms:1e-6 ~cache db q config in
      Alcotest.(check int) "all candidates degraded (cold cache)"
        out.Query.stats.prob_candidates out.Query.stats.degraded_candidates;
      List.iter
        (fun a ->
          Alcotest.(check bool)
            (Printf.sprintf "budget keeps true answer %d (cache armed)" a)
            true
            (List.mem a out.Query.answers))
        exact.Query.answers;
      (* No budget, same cache: bit-identical — the degraded pass stored
         no bound-derived values. *)
      let fresh = Query.run ~cache db q config in
      Alcotest.(check (list int)) "degraded pass left no residue"
        exact.Query.answers fresh.Query.answers;
      (* Warm cache, spent budget: deadline checks precede cache lookups,
         so budget semantics are preserved — candidates still degrade. *)
      let again = Query.run ~budget_ms:1e-6 ~cache db q config in
      Alcotest.(check int) "warm cache does not bypass the budget"
        again.Query.stats.prob_candidates
        again.Query.stats.degraded_candidates)
    picked

let test_poisoned_cache_entry_evicted () =
  let ds, db = make_db 373 18 in
  let picked =
    queries_with_candidates ds db base_config (Prng.make 59) ~want:2
  in
  Alcotest.(check bool) "found queries with verification work" true
    (picked <> []);
  let cache = Qcache.create () in
  List.iter
    (fun (q, _) -> ignore (Query.run ~cache db q base_config))
    picked;
  let poisoned = Qcache.poison_ssp cache Float.nan in
  Alcotest.(check bool) "ssp entries were poisoned" true (poisoned > 0);
  let evict = Psst_obs.counter "cache.evict" in
  let warn = Psst_obs.counter "warn.cache.poisoned" in
  let evict0 = Psst_obs.counter_value evict
  and warn0 = Psst_obs.counter_value warn in
  List.iter
    (fun (q, (exact : Query.outcome)) ->
      let out = Query.run ~cache db q base_config in
      Alcotest.(check (list int)) "poisoned entries recomputed, not served"
        exact.Query.answers out.Query.answers)
    picked;
  Alcotest.(check bool) "poisoned reads evicted" true
    (Psst_obs.counter_value evict - evict0 >= poisoned);
  Alcotest.(check bool) "poisoning warned" true
    (Psst_obs.counter_value warn - warn0 >= poisoned);
  (* The recomputed values replaced the poison: a third pass is warm and
     clean (no further warnings). *)
  let warn1 = Psst_obs.counter_value warn in
  List.iter
    (fun (q, (exact : Query.outcome)) ->
      let out = Query.run ~cache db q base_config in
      Alcotest.(check (list int)) "re-cached pass stays clean"
        exact.Query.answers out.Query.answers)
    picked;
  Alcotest.(check int) "no warnings after recompute" warn1
    (Psst_obs.counter_value warn)

(* --- the serving stack under chaos --- *)

let with_server ?(domains = 1) ?(verify_budget_ms = 0.) db f =
  let path = Filename.temp_file "psst_chaos_srv" ".sock" in
  let srv =
    Server.start
      {
        (Server.default_config (P.Unix_socket path)) with
        Server.domains;
        verify_budget_ms;
      }
      db
  in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      try Sys.remove path with Sys_error _ -> ())
    (fun () -> f srv)

let with_client ?(connect_timeout_ms = 5000.) ?(call_timeout_ms = 30000.) srv f
    =
  let c =
    Client.connect ~connect_timeout_ms ~call_timeout_ms (Server.endpoint srv)
  in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let check_invariant ~what offline replies =
  List.iteri
    (fun i exact ->
      match replies.(i) with
      | P.Answer { answers; stats; _ } ->
        if stats.P.degraded then
          List.iter
            (fun a ->
              Alcotest.(check bool)
                (Printf.sprintf "%s: degraded reply %d keeps answer %d" what i
                   a)
                true (List.mem a answers))
            exact
        else
          Alcotest.(check (list int))
            (Printf.sprintf "%s: exact reply %d is bit-identical" what i)
            exact answers
      | P.Error_reply { code; _ } ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: error reply %d is retryable" what i)
          true
          (P.error_code_retryable code)
      | _ -> Alcotest.failf "%s: reply %d has unexpected kind" what i)
    offline

let test_served_chaos_invariant () =
  let ds, db = make_db 347 20 in
  let rng = Prng.make 29 in
  let queries =
    List.init 4 (fun _ -> fst (Generator.extract_query rng ds ~edges:4))
  in
  let offline =
    List.map (fun q -> (Query.run db q base_config).Query.answers) queries
  in
  with_server db (fun srv ->
      (* Round 1, armed: byte-at-a-time socket IO on both sides plus a
         flaky verification stage. Every reply must satisfy the chaos
         invariant; the run must terminate (call timeouts bound hangs). *)
      F.arm ~seed:4242
        [
          ("proto.read", F.Partial_io, 0.25);
          ("proto.write", F.Partial_io, 0.25);
          ("server.batch", F.Fail, 0.5);
        ];
      Fun.protect ~finally:F.disarm (fun () ->
          with_client srv (fun c ->
              let replies =
                Client.run_all ~max_retries:6 ~backoff_ms:5. c queries
                  base_config
              in
              check_invariant ~what:"armed" offline replies));
      (* Round 2, disarmed: bit-identical to offline, not flagged. *)
      with_client srv (fun c ->
          let replies = Client.run_all c queries base_config in
          List.iteri
            (fun i exact ->
              match replies.(i) with
              | P.Answer { answers; stats; _ } ->
                Alcotest.(check (list int))
                  (Printf.sprintf "disarmed reply %d bit-identical" i)
                  exact answers;
                Alcotest.(check bool)
                  (Printf.sprintf "disarmed reply %d not degraded" i)
                  false stats.P.degraded
              | _ -> Alcotest.failf "disarmed reply %d: expected Answer" i)
            offline))

let test_served_budget_and_health () =
  let ds, db = make_db 353 18 in
  let config = { base_config with verifier = `Smp slow_smp } in
  let picked =
    queries_with_candidates ds db config (Prng.make 43) ~want:2
  in
  Alcotest.(check bool) "found queries with verification work" true
    (picked <> []);
  let queries = List.map fst picked in
  let offline = List.map (fun (_, o) -> o.Query.answers) picked in
  with_server ~verify_budget_ms:1e-6 db (fun srv ->
      with_client srv (fun c ->
          let h0 = Client.health c in
          Alcotest.(check bool) "uptime sane" true (h0.P.uptime_s >= 0.);
          Alcotest.(check int) "no degraded answers yet" 0
            h0.P.degraded_answers;
          let replies = Client.run_all c queries config in
          check_invariant ~what:"budgeted" offline replies;
          let degraded_replies =
            Array.to_list replies
            |> List.filter (function
                 | P.Answer { stats; _ } -> stats.P.degraded
                 | _ -> false)
            |> List.length
          in
          Alcotest.(check bool) "budget produced degraded answers" true
            (degraded_replies > 0);
          let h = Client.health c in
          Alcotest.(check int) "health counts the degraded answers"
            degraded_replies h.P.degraded_answers;
          Alcotest.(check bool) "health counts served" true
            (h.P.served > h0.P.served)))

let test_connect_timeout () =
  (* A listener whose accept queue is full drops further SYNs, so a
     connect to it hangs in SYN-sent — exactly the case the timeout
     exists for. The call must return a clean Client_error within the
     timeout instead of blocking for the kernel's minutes-long retry. *)
  let srv = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let fillers = ref [] in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        (srv :: !fillers))
    (fun () ->
      Unix.bind srv (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
      Unix.listen srv 1;
      let port =
        match Unix.getsockname srv with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> assert false
      in
      (* Saturate the accept queue; these are never accepted. *)
      for _ = 1 to 8 do
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        fillers := fd :: !fillers;
        Unix.set_nonblock fd;
        try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
        with
        | Unix.Unix_error
            ((Unix.EINPROGRESS | Unix.EWOULDBLOCK | Unix.EAGAIN), _, _)
        ->
          ()
      done;
      Thread.delay 0.05;
      let t0 = Unix.gettimeofday () in
      (match
         Client.connect ~connect_timeout_ms:300.
           (P.Tcp ("127.0.0.1", port))
       with
      | c ->
        Client.close c;
        Alcotest.fail "connected past a full accept queue?"
      | exception Client.Client_error _ -> ());
      Alcotest.(check bool) "bounded connect wait" true
        (Unix.gettimeofday () -. t0 < 10.))

(* --- the router under chaos (DESIGN.md §14) ---

   Same degradation contract as a single server, applied per shard: a
   slow worker only delays, a faulted or dead worker degrades exactly its
   own shard to a flagged bounds superset when the router holds the shard
   locally, and fails the whole request with one clean retryable error
   when it does not. Top-k never degrades — a ranking with a missing
   shard would be wrong, not conservative. *)

let with_router ?(fallback = false) db parts f =
  let shards =
    List.map
      (fun (base, count) -> Psst_shard.sub_database db ~base ~count)
      parts
  in
  let socks =
    List.map (fun _ -> Filename.temp_file "psst_chaos_w" ".sock") shards
  in
  let rsock = Filename.temp_file "psst_chaos_r" ".sock" in
  let endpoints = List.map (fun s -> P.Unix_socket s) socks in
  let workers =
    List.map2
      (fun ep sdb ->
        Server.start
          { (Server.default_config ep) with Server.domains = 1 }
          sdb)
      endpoints shards
  in
  let arr = Array.of_list shards in
  let router =
    Psst_router.start
      {
        (Psst_router.default_config ~endpoint:(P.Unix_socket rsock)
           ~workers:endpoints)
        with
        Psst_router.local_fallback =
          (if fallback then
             Some
               (fun sid ->
                 if sid >= 0 && sid < Array.length arr then Some arr.(sid)
                 else None)
           else None);
      }
  in
  Fun.protect
    ~finally:(fun () ->
      Psst_router.stop router;
      List.iter Server.stop workers;
      List.iter
        (fun s -> try Sys.remove s with Sys_error _ -> ())
        (rsock :: socks))
    (fun () -> f router (Array.of_list workers))

let test_router_chaos_scenarios () =
  let ds, db = make_db 431 16 in
  let plan = Psst_shard.plan_even ~parts:2 ~total:16 in
  let rng = Prng.make 71 in
  let queries =
    List.init 3 (fun _ -> fst (Generator.extract_query rng ds ~edges:4))
  in
  let offline =
    List.map (fun q -> (Query.run db q base_config).Query.answers) queries
  in
  let run_all c =
    List.mapi
      (fun i q ->
        Client.rpc c (P.Run { id = i; query = q; config = base_config }))
      queries
  in
  let check_exact what replies =
    List.iteri
      (fun i exact ->
        match List.nth replies i with
        | P.Answer { answers; stats; _ } ->
          Alcotest.(check (list int))
            (Printf.sprintf "%s: reply %d bit-identical" what i)
            exact answers;
          Alcotest.(check bool)
            (Printf.sprintf "%s: reply %d not degraded" what i)
            false stats.P.degraded
        | _ -> Alcotest.failf "%s: reply %d: expected Answer" what i)
      offline
  in
  with_router ~fallback:true db plan (fun router workers ->
      let ep = Psst_router.endpoint router in
      let c = Client.connect ~call_timeout_ms:30000. ep in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          (* baseline: disarmed, bit-identical *)
          check_exact "baseline" (run_all c);
          (* a slow worker only delays; answers stay exact *)
          F.arm ~seed:83 [ ("router.scatter", F.Delay 0.02, 1.) ];
          Fun.protect ~finally:F.disarm (fun () ->
              check_exact "delayed" (run_all c));
          (* a faulted worker degrades its shard to a flagged superset *)
          F.arm ~seed:89 [ ("router.scatter", F.Fail, 1.) ];
          Fun.protect ~finally:F.disarm (fun () ->
              let replies = run_all c in
              List.iteri
                (fun i exact ->
                  match List.nth replies i with
                  | P.Answer { answers; stats; _ } ->
                    Alcotest.(check bool)
                      (Printf.sprintf "faulted: reply %d flagged" i)
                      true stats.P.degraded;
                    List.iter
                      (fun a ->
                        Alcotest.(check bool)
                          (Printf.sprintf
                             "faulted: reply %d keeps answer %d" i a)
                          true (List.mem a answers))
                      exact
                  | _ -> Alcotest.failf "faulted: reply %d: expected Answer" i)
                offline);
          (* disarmed again: bit-identical, nothing lingers *)
          check_exact "disarmed" (run_all c);
          (* worker killed mid-serving, shard held locally: flagged
             superset for its shard, the other shard still exact *)
          Server.stop workers.(0);
          let b1 = match plan with _ :: (b, _) :: _ -> b | _ -> 16 in
          let replies = run_all c in
          List.iteri
            (fun i exact ->
              match List.nth replies i with
              | P.Answer { answers; stats; _ } ->
                Alcotest.(check bool)
                  (Printf.sprintf "killed: reply %d flagged" i)
                  true stats.P.degraded;
                List.iter
                  (fun a ->
                    Alcotest.(check bool)
                      (Printf.sprintf "killed: reply %d keeps answer %d" i a)
                      true (List.mem a answers))
                  exact;
                Alcotest.(check (list int))
                  (Printf.sprintf "killed: reply %d healthy shard exact" i)
                  (List.filter (fun g -> g >= b1) exact)
                  (List.filter (fun g -> g >= b1) answers)
              | _ -> Alcotest.failf "killed: reply %d: expected Answer" i)
            offline;
          (* top-k never falls back to bounds: clean retryable error *)
          match
            Client.rpc c
              (P.Run_topk
                 { id = 9; query = List.hd queries; k = 3;
                   config = base_config })
          with
          | P.Error_reply { code; _ } ->
            Alcotest.(check bool) "top-k with a dead worker is retryable"
              true
              (P.error_code_retryable code)
          | _ -> Alcotest.fail "top-k with a dead worker: expected error"))

let test_router_dead_worker_without_fallback () =
  let ds, db = make_db 433 16 in
  let plan = Psst_shard.plan_even ~parts:2 ~total:16 in
  let q, _ = Generator.extract_query (Prng.make 73) ds ~edges:4 in
  with_router ~fallback:false db plan (fun router workers ->
      Server.stop workers.(1);
      let c =
        Client.connect ~call_timeout_ms:30000. (Psst_router.endpoint router)
      in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          (match
             Client.rpc c (P.Run { id = 0; query = q; config = base_config })
           with
          | P.Error_reply { code; _ } ->
            Alcotest.(check bool) "dead shard, no fallback: retryable" true
              (P.error_code_retryable code)
          | _ -> Alcotest.fail "dead shard, no fallback: expected error");
          (* the healthy worker is untouched: a fresh request still errors
             (whole request, not a silent partial answer) *)
          match
            Client.rpc c
              (P.Run_topk { id = 1; query = q; k = 2; config = base_config })
          with
          | P.Error_reply { code; _ } ->
            Alcotest.(check bool) "dead shard top-k: retryable" true
              (P.error_code_retryable code)
          | _ -> Alcotest.fail "dead shard top-k: expected error"))

(* --- crash atomicity: SIGKILL a child mid-write --- *)

let exe =
  let candidates =
    [ "../bin/psst.exe"; "_build/default/bin/psst.exe"; "bin/psst.exe" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> "../bin/psst.exe"

let run_child ?(env = [||]) args =
  (* Drop any PSST_FAULTS* the test process itself carries (putenv in
     test_arm_from_env): with duplicate entries the child's getenv sees
     the FIRST one, which would shadow the plan passed in [env]. *)
  let inherited =
    Array.to_list (Unix.environment ())
    |> List.filter (fun kv ->
           not (String.length kv >= 11 && String.sub kv 0 11 = "PSST_FAULTS")
           && not
                (String.length kv >= 15
                && String.sub kv 0 15 = "PSST_FAULT_SEED"))
    |> Array.of_list
  in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close devnull)
    (fun () ->
      Unix.create_process_env exe
        (Array.append [| exe |] args)
        (Array.append inherited env)
        devnull devnull devnull)

let test_sigkill_mid_write () =
  with_tmp (fun path ->
      (* A pristine index written by a clean child run. *)
      let pid =
        run_child [| "index"; "-n"; "10"; "--seed"; "5"; "-o"; path |]
      in
      (match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _ -> Alcotest.fail "clean index run failed");
      let pristine = read_bytes path in
      (* A second run, same output path, with a 5 s delay injected into the
         middle of store.write: the tmp file sits half-flushed while the
         child sleeps — SIGKILL it there. *)
      let pid =
        run_child
          ~env:
            [| "PSST_FAULTS=store.write=delay:5000"; "PSST_FAULT_SEED=1" |]
          [| "index"; "-n"; "10"; "--seed"; "6"; "-o"; path |]
      in
      let rec await_tmp n =
        if Sys.file_exists (path ^ ".tmp") then true
        else if n = 0 then false
        else begin
          Thread.delay 0.05;
          await_tmp (n - 1)
        end
      in
      let caught_mid_write = await_tmp 1200 (* up to 60 s *) in
      Unix.kill pid Sys.sigkill;
      ignore (Unix.waitpid [] pid);
      Alcotest.(check bool) "child was killed inside the write window" true
        caught_mid_write;
      Alcotest.(check bool) "old index bytes intact after SIGKILL" true
        (read_bytes path = pristine);
      Alcotest.(check bool) "orphan tmp left by the kill" true
        (Sys.file_exists (path ^ ".tmp"));
      (* The next open serves the old index and cleans the orphan. *)
      let db = Query.load_database path in
      Alcotest.(check int) "old index loads" 10 (Corpus.length db.Query.graphs);
      Alcotest.(check bool) "orphan tmp cleaned on open" false
        (Sys.file_exists (path ^ ".tmp")))

let test_sigkill_mid_split () =
  (* Crash atomicity of a deployment: every file `psst shard` writes goes
     through the atomic tmp+rename store path and the manifest is written
     last, so a SIGKILL anywhere mid-split leaves the previous deployment
     fully intact and loadable — never a manifest naming half-written
     shard files. *)
  let dir = Filename.temp_file "psst_chaos_split" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun e -> try Sys.remove (Filename.concat dir e) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () ->
      let manifest = Filename.concat dir "deploy.manifest" in
      let pid =
        run_child
          [| "shard"; "-n"; "10"; "--seed"; "5"; "-o"; manifest;
             "--shards"; "2" |]
      in
      (match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _ -> Alcotest.fail "clean shard split failed");
      let m = Psst_shard.load_manifest manifest in
      let files =
        manifest
        :: List.map (fun e -> Filename.concat dir e.Psst_shard.path)
             m.Psst_shard.entries
      in
      let pristine = List.map read_bytes files in
      (* Re-split the same deployment path from a different corpus, with a
         5 s delay injected into the middle of every store write: the
         child sits on a half-flushed .tmp — SIGKILL it there. *)
      let pid =
        run_child
          ~env:
            [| "PSST_FAULTS=store.write=delay:5000"; "PSST_FAULT_SEED=1" |]
          [| "shard"; "-n"; "12"; "--seed"; "6"; "-o"; manifest;
             "--shards"; "2" |]
      in
      let tmp_present () =
        Array.exists
          (fun e -> Filename.check_suffix e ".tmp")
          (Sys.readdir dir)
      in
      let rec await n =
        if tmp_present () then true
        else if n = 0 then false
        else begin
          Thread.delay 0.05;
          await (n - 1)
        end
      in
      let caught = await 1200 (* up to 60 s *) in
      Unix.kill pid Sys.sigkill;
      ignore (Unix.waitpid [] pid);
      Alcotest.(check bool) "child was killed inside a write window" true
        caught;
      List.iter2
        (fun path bytes ->
          Alcotest.(check bool)
            (Filename.basename path ^ " intact after SIGKILL")
            true
            (read_bytes path = bytes))
        files pristine;
      (* The old deployment still loads and reassembles. *)
      let m' = Psst_shard.load_manifest manifest in
      Alcotest.(check bool) "manifest unchanged" true (m' = m);
      let db =
        Psst_shard.merge (Psst_shard.load_all ~manifest_path:manifest m')
      in
      Alcotest.(check int) "old deployment reassembles" 10
        (Corpus.length db.Query.graphs))

(* --- ingest under faults (DESIGN.md §16) --- *)

let make_batch seed n =
  (Generator.generate { Generator.default_params with num_graphs = n; seed })
    .Generator.graphs

let with_ingest_server ~chain db f =
  let path = Filename.temp_file "psst_chaos_ing" ".sock" in
  let srv = Server.start ~chain (Server.default_config (P.Unix_socket path)) db in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      try Sys.remove path with Sys_error _ -> ())
    (fun () -> f srv)

(* Armed store.write faults while ingesting: the persist fails before
   the epoch swap, so the batch is rejected with a clean retryable
   error, the served database and the base store are unchanged, queries
   keep answering exactly against the old epoch, and after disarming the
   same batch applies — the store plus chain stay loadable throughout. *)
let test_ingest_store_faults_reject_cleanly () =
  with_tmp @@ fun path ->
  let ds, db = make_db 521 12 in
  Query.save_database path db;
  let base_bytes = read_bytes path in
  let db, chain = Psst_ingest.load path in
  let batch = make_batch 977 5 in
  let rng = Prng.make 71 in
  let q = fst (Generator.extract_query rng ds ~edges:4) in
  let exact0 = Query.run db q base_config in
  with_ingest_server ~chain db (fun srv ->
      with_client srv (fun c ->
          List.iter
            (fun (label, plan) ->
              F.arm ~seed:43 [ ("store.write", plan, 1.) ];
              Fun.protect ~finally:F.disarm (fun () ->
                  (match Client.add_graphs c batch with
                  | Error (code, _) ->
                    Alcotest.(check bool)
                      (label ^ ": rejection is retryable") true
                      (P.error_code_retryable code)
                  | Ok _ ->
                    Alcotest.failf "%s: persist fault must reject the batch"
                      label);
                  Alcotest.(check int) (label ^ ": epoch unchanged") 0
                    (Server.epoch srv);
                  Alcotest.(check bool) (label ^ ": no delta file") false
                    (Sys.file_exists (Psst_ingest.delta_path path 1));
                  (* Queries during the fault: exact, against the old
                     epoch. *)
                  match Client.run_all c [ q ] base_config with
                  | [| P.Answer { answers; _ } |] ->
                    Alcotest.(check (list int))
                      (label ^ ": answers exact under fault")
                      exact0.Query.answers answers
                  | _ -> Alcotest.failf "%s: expected Answer" label))
            [ ("fail", F.Fail); ("partial", F.Partial_io) ];
          (* Disarmed: the same batch applies and persists. *)
          (match Client.add_graphs c batch with
          | Ok r ->
            Alcotest.(check int) "applies after disarm" 1 r.Psst_ingest.epoch
          | Error _ -> Alcotest.fail "batch must apply once disarmed");
          Alcotest.(check bool) "delta exists after disarm" true
            (Sys.file_exists (Psst_ingest.delta_path path 1))));
  Alcotest.(check bool) "base store never rewritten" true
    (read_bytes path = base_bytes);
  (* The chain is loadable and reconstructs base + the applied batch. *)
  let reloaded, _ = Psst_ingest.load path in
  Alcotest.(check int) "reload = base + applied batch" 17
    (Corpus.length reloaded.Query.graphs);
  ignore (Psst_ingest.clear_deltas path)

(* Armed server.batch faults while epochs advance: ingest still applies
   (it does not run through the batcher), and every query reply is
   exact or a flagged superset of the post-ingest offline answers —
   never silently wrong. Disarmed, replies return to bit-identical. *)
let test_ingest_batch_faults_degrade () =
  let ds, db0 = make_db 523 15 in
  let batch = make_batch 983 6 in
  let db1 = Query.add_graphs db0 batch in
  let rng = Prng.make 73 in
  let queries =
    List.init 3 (fun _ -> fst (Generator.extract_query rng ds ~edges:4))
  in
  let offline1 = List.map (fun q -> Query.run db1 q base_config) queries in
  with_server db0 (fun srv ->
      with_client srv (fun c ->
          F.arm ~seed:47 [ ("server.batch", F.Fail, 1.) ];
          Fun.protect ~finally:F.disarm (fun () ->
              (match Client.add_graphs c batch with
              | Ok r ->
                Alcotest.(check int) "ingest applies under batch faults" 1
                  r.Psst_ingest.epoch
              | Error _ -> Alcotest.fail "ingest must not consult server.batch");
              let replies = Client.run_all c queries base_config in
              List.iteri
                (fun i (exact : Query.outcome) ->
                  match replies.(i) with
                  | P.Answer { answers; stats; _ } ->
                    List.iter
                      (fun a ->
                        Alcotest.(check bool)
                          (Printf.sprintf
                             "query %d keeps true answer %d under faults" i a)
                          true (List.mem a answers))
                      exact.Query.answers;
                    if not stats.P.degraded then
                      Alcotest.(check (list int))
                        (Printf.sprintf "query %d unflagged must be exact" i)
                        exact.Query.answers answers
                  | P.Error_reply { code; _ } ->
                    Alcotest.(check bool)
                      (Printf.sprintf "query %d error is retryable" i)
                      true (P.error_code_retryable code)
                  | _ -> Alcotest.failf "query %d: unexpected reply kind" i)
                offline1);
          (* Disarmed: bit-identical to offline on the ingested epoch. *)
          let replies = Client.run_all c queries base_config in
          List.iteri
            (fun i (exact : Query.outcome) ->
              match replies.(i) with
              | P.Answer { answers; _ } ->
                Alcotest.(check (list int))
                  (Printf.sprintf "query %d bit-identical after disarm" i)
                  exact.Query.answers answers
              | _ -> Alcotest.failf "query %d: expected Answer" i)
            offline1))

(* --- replication under chaos (DESIGN.md §17) ---

   The headline failover invariant: with the standby's stream and
   persist faulted (bitflipped frames, partial writes) and the primary
   SIGKILLed, every batch the primary ever acknowledged is on the
   promoted survivor, which then serves writable — bit-identical to an
   offline replay of its chain. During the armed window every ingest
   ack is either a success or a clean retryable error, and a retry with
   the same idempotency token converges without double-ingesting. *)

let await_connectable path ~timeout =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    match Client.connect ~connect_timeout_ms:200. (P.Unix_socket path) with
    | c ->
      Client.close c;
      true
    | exception _ ->
      if Unix.gettimeofday () > deadline then false
      else begin
        Thread.delay 0.05;
        go ()
      end
  in
  go ()

let wait_for ?(timeout = 30.) what pred =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Thread.delay 0.02;
      go ()
    end
  in
  go ()

let test_replication_chaos_failover () =
  let dir = Filename.temp_file "psst_chaos_rep" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let ppath = Filename.concat dir "primary.psst" in
  let spath = Filename.concat dir "standby.psst" in
  let psock = Filename.concat dir "primary.sock" in
  let ssock = Filename.concat dir "standby.sock" in
  let child = ref None in
  let cleanup () =
    (match !child with
    | Some pid ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
    | None -> ());
    F.disarm ();
    Array.iter
      (fun e -> try Sys.remove (Filename.concat dir e) with Sys_error _ -> ())
      (try Sys.readdir dir with Sys_error _ -> [||]);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  (* The primary's index is built by the CLI itself (the serve child
     validates the store against its own corpus — an index built with
     test-local mining parameters would be rejected and rebuilt). *)
  let pid = run_child [| "index"; "-n"; "12"; "--seed"; "541"; "-o"; ppath |] in
  (match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _ -> Alcotest.fail "index build failed");
  let ds =
    Generator.generate
      { Generator.default_params with num_graphs = 12; seed = 541 }
  in
  write_bytes spath (read_bytes ppath);
  (* The primary is a real child process serving the base index; its
     delta chain lives next to [ppath]. *)
  child :=
    Some
      (run_child
         [| "serve"; "--index"; ppath; "-n"; "12"; "--seed"; "541";
            "--socket"; psock |]);
  Alcotest.(check bool) "primary came up" true
    (await_connectable psock ~timeout:60.);
  let sdb, schain = Psst_ingest.load spath in
  let ssrv =
    Server.start ~chain:schain
      {
        (Server.default_config (P.Unix_socket ssock)) with
        Server.writable = false;
      }
      sdb
  in
  Fun.protect ~finally:(fun () -> Server.stop ssrv) @@ fun () ->
  (* Chaos on the standby's receive path and persist path: frames get
     bitflipped on the wire (validation refuses them, the connection
     drops and re-subscribes) and the verbatim persist suffers partial
     writes (the store discipline refuses the torn temp file). *)
  F.arm ~seed:97
    [ ("replica.stream", F.Bitflip, 0.25); ("store.write", F.Partial_io, 0.2) ];
  let st =
    Psst_replica.start_standby ~backoff_ms:5. ~max_backoff_ms:100.
      ~primary:(P.Unix_socket psock) ~chain:schain (Server.snapshot_ref ssrv)
  in
  let promoted = ref false in
  Fun.protect
    ~finally:(fun () -> if not !promoted then Psst_replica.stop_standby st)
  @@ fun () ->
  let batches = List.init 4 (fun i -> make_batch (1103 + i) 3) in
  let c = Client.connect ~call_timeout_ms:30000. (P.Unix_socket psock) in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () ->
      List.iteri
        (fun i batch ->
          let token = Printf.sprintf "chaos-batch-%d" i in
          let rec attempt n =
            if n = 0 then
              Alcotest.failf "batch %d never acknowledged under chaos" i
            else
              match Client.add_graphs ~token c batch with
              | Ok r ->
                (* Dedup across retries: the ack names one ingestion of
                   this batch, whatever attempt it acknowledged. *)
                Alcotest.(check int)
                  (Printf.sprintf "batch %d acked exactly once" i)
                  (i + 1) r.Psst_ingest.epoch
              | Error (code, _) ->
                Alcotest.(check bool)
                  (Printf.sprintf "batch %d rejection is retryable" i)
                  true
                  (P.error_code_retryable code);
                Thread.delay 0.05;
                attempt (n - 1)
          in
          attempt 80)
        batches);
  (* Every acked batch reaches the survivor's disk (the ack gate held
     whenever the subscriber was live; reconnects replay the rest). *)
  wait_for "standby convergence" (fun () -> Psst_replica.applied_seq st = 4);
  (* The primary dies without warning, mid-deployment. *)
  (match !child with
  | Some pid ->
    Unix.kill pid Sys.sigkill;
    ignore (Unix.waitpid [] pid);
    child := None
  | None -> assert false);
  F.disarm ();
  Psst_replica.promote st ssrv;
  promoted := true;
  Alcotest.(check bool) "survivor is writable" true (Server.writable ssrv);
  (* The survivor accepts the write load where the primary left off. *)
  let extra = make_batch 1201 3 in
  (let c = Client.connect (P.Unix_socket ssock) in
   Fun.protect ~finally:(fun () -> Client.close c) (fun () ->
       match Client.add_graphs c extra with
       | Ok r ->
         Alcotest.(check int) "post-promotion epoch" 5 r.Psst_ingest.epoch
       | Error (_, msg) -> Alcotest.failf "post-promotion ingest failed: %s" msg));
  (* No acked batch lost: an offline replay of the survivor's chain
     holds the base corpus, all four acked batches and the
     post-promotion one, and the promoted server answers bit-identically
     to it — the monolithic offline reference. *)
  let offline_db, offline_chain = Psst_ingest.load spath in
  Alcotest.(check int) "survivor chain replays every delta" 6
    offline_chain.Psst_ingest.next_seq;
  Alcotest.(check int) "no acked batch lost"
    (12 + (4 * 3) + 3)
    (Corpus.length offline_db.Query.graphs);
  let rng = Prng.make 79 in
  let queries =
    List.init 3 (fun _ -> fst (Generator.extract_query rng ds ~edges:4))
  in
  let c = Client.connect (P.Unix_socket ssock) in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () ->
      List.iteri
        (fun i q ->
          let exact = Query.run offline_db q base_config in
          match Client.rpc c (P.Run { id = i; query = q; config = base_config })
          with
          | P.Answer { answers; stats; _ } ->
            Alcotest.(check (list int))
              (Printf.sprintf "promoted reply %d bit-identical to offline" i)
              exact.Query.answers answers;
            Alcotest.(check bool)
              (Printf.sprintf "promoted reply %d not degraded" i)
              false stats.P.degraded
          | _ -> Alcotest.failf "promoted reply %d: expected Answer" i)
        queries)

let suite =
  [
    Alcotest.test_case "fault schedules are deterministic" `Quick
      test_fault_determinism;
    Alcotest.test_case "disarmed sites never fire" `Quick
      test_disarmed_is_silent;
    Alcotest.test_case "firings are metered" `Quick test_fires_are_metered;
    Alcotest.test_case "PSST_FAULTS syntax" `Quick test_parse_plan;
    Alcotest.test_case "arming from the environment" `Quick test_arm_from_env;
    Alcotest.test_case "partial write leaves old file intact" `Quick
      test_partial_write_leaves_old_intact;
    Alcotest.test_case "bitflipped write refused by readers" `Quick
      test_bitflipped_write_is_refused_by_readers;
    Alcotest.test_case "read faults surface as Store_error" `Quick
      test_read_faults_surface_cleanly;
    Alcotest.test_case "salvage rebuilds only the damaged shard" `Slow
      test_salvage_rebuilds_only_damaged_shard;
    Alcotest.test_case "metadata sections are not salvageable" `Quick
      test_salvage_cannot_rebuild_metadata;
    Alcotest.test_case "budget degrades to a flagged superset" `Slow
      test_budget_degrades_to_superset;
    Alcotest.test_case "verify faults degrade to a superset" `Slow
      test_verify_fault_degrades_to_superset;
    Alcotest.test_case "verify faults with armed cache" `Slow
      test_verify_fault_with_armed_cache;
    Alcotest.test_case "budget with armed cache" `Slow
      test_budget_with_armed_cache;
    Alcotest.test_case "poisoned cache entry evicted, not served" `Slow
      test_poisoned_cache_entry_evicted;
    Alcotest.test_case "served chaos invariant" `Slow
      test_served_chaos_invariant;
    Alcotest.test_case "served budget + health endpoint" `Slow
      test_served_budget_and_health;
    Alcotest.test_case "connect timeout is bounded" `Quick
      test_connect_timeout;
    Alcotest.test_case "router: delay, fault, kill, disarm" `Slow
      test_router_chaos_scenarios;
    Alcotest.test_case "router: dead shard without fallback" `Slow
      test_router_dead_worker_without_fallback;
    Alcotest.test_case "ingest store faults reject cleanly" `Slow
      test_ingest_store_faults_reject_cleanly;
    Alcotest.test_case "ingest under batch faults degrades, never lies" `Slow
      test_ingest_batch_faults_degrade;
    Alcotest.test_case "SIGKILL mid-write keeps the old index" `Slow
      test_sigkill_mid_write;
    Alcotest.test_case "SIGKILL mid-split keeps the old deployment" `Slow
      test_sigkill_mid_split;
    Alcotest.test_case "replication failover loses no acked batch" `Slow
      test_replication_chaos_failover;
  ]
