(* The persistent store (DESIGN.md §9): randomized round trips, bit-identical
   query answers from a loaded PMI, and a corruption suite — every truncation
   and byte flip must surface as [Psst_store.Store_error], never as
   [Failure], a segfault, or a silent success. *)

module S = Psst_store
module Prng = Psst_util.Prng

let with_tmp f =
  let path = Filename.temp_file "psst_store" ".bin" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let read_bytes path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_bytes path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

let lgraph_identical a b =
  Lgraph.vertex_labels a = Lgraph.vertex_labels b
  && Array.length (Lgraph.edges a) = Array.length (Lgraph.edges b)
  && Array.for_all2
       (fun (x : Lgraph.edge) (y : Lgraph.edge) ->
         x.u = y.u && x.v = y.v && x.label = y.label && x.id = y.id)
       (Lgraph.edges a) (Lgraph.edges b)

let pgraph_identical a b =
  lgraph_identical (Pgraph.skeleton a) (Pgraph.skeleton b)
  && Pgraph.uncertain_edges a = Pgraph.uncertain_edges b
  && List.length (Pgraph.factors a) = List.length (Pgraph.factors b)
  && List.for_all2
       (Factor.equal_approx ~eps:0.) (* bit-identical tables *)
       (Pgraph.factors a) (Pgraph.factors b)

(* --- primitives --- *)

let test_primitive_round_trip () =
  let e = S.encoder () in
  S.put_i64 e min_int;
  S.put_i64 e max_int;
  S.put_i64 e 0;
  S.put_f64 e 0.1;
  S.put_f64 e (-0.0);
  S.put_f64 e infinity;
  S.put_f64 e 1.0000000000000002;
  S.put_bool e true;
  S.put_bool e false;
  S.put_string e "";
  S.put_string e "hello\x00world";
  S.put_int_list e [ 3; 1; 4; 1; 5 ];
  S.put_option e S.put_i64 None;
  S.put_option e S.put_i64 (Some 42);
  S.put_i32 e 0xDEADBEEFl;
  let d = S.decoder (S.contents e) in
  Alcotest.(check bool) "min_int" true (S.get_i64 d = min_int);
  Alcotest.(check bool) "max_int" true (S.get_i64 d = max_int);
  Alcotest.(check int) "zero" 0 (S.get_i64 d);
  Alcotest.(check bool) "0.1 bits" true
    (Int64.bits_of_float (S.get_f64 d) = Int64.bits_of_float 0.1);
  Alcotest.(check bool) "-0.0 bits" true
    (Int64.bits_of_float (S.get_f64 d) = Int64.bits_of_float (-0.0));
  Alcotest.(check bool) "inf" true (S.get_f64 d = infinity);
  Alcotest.(check bool) "1+ulp" true (S.get_f64 d = 1.0000000000000002);
  Alcotest.(check bool) "true" true (S.get_bool d);
  Alcotest.(check bool) "false" false (S.get_bool d);
  Alcotest.(check string) "empty string" "" (S.get_string d);
  Alcotest.(check string) "nul string" "hello\x00world" (S.get_string d);
  Alcotest.(check (list int)) "int list" [ 3; 1; 4; 1; 5 ] (S.get_int_list d);
  Alcotest.(check bool) "none" true (S.get_option d S.get_i64 = None);
  Alcotest.(check bool) "some" true (S.get_option d S.get_i64 = Some 42);
  Alcotest.(check int32) "i32" 0xDEADBEEFl (S.get_i32 d);
  S.expect_end d

let test_crc32_known_vectors () =
  (* Standard check values for the IEEE CRC-32. *)
  Alcotest.(check int32) "check string" 0xCBF43926l
    (Psst_util.Crc32.digest "123456789");
  Alcotest.(check int32) "empty" 0l (Psst_util.Crc32.digest "");
  let whole = Psst_util.Crc32.digest "123456789" in
  let incr =
    Psst_util.Crc32.update
      (Psst_util.Crc32.update 0l "12345" ~pos:0 ~len:5)
      "6789" ~pos:0 ~len:4
  in
  Alcotest.(check int32) "incremental = whole" whole incr

(* --- graph / pgraph round trips --- *)

let test_lgraph_round_trip () =
  let rng = Prng.make 2024 in
  for i = 0 to 199 do
    let g =
      if i mod 3 = 0 then Tgen.random_graph rng ~n:(1 + Prng.int rng 9) ~m:(Prng.int rng 12) ~vl:4 ~el:3
      else Tgen.random_connected_graph rng ~n:(2 + Prng.int rng 8) ~extra:(Prng.int rng 5) ~vl:4 ~el:3
    in
    let e = S.encoder () in
    S.put_lgraph e g;
    let d = S.decoder (S.contents e) in
    let g' = S.get_lgraph d in
    S.expect_end d;
    if not (lgraph_identical g g') then
      Alcotest.failf "lgraph %d not identical after round trip" i
  done

let test_pgraph_round_trip () =
  let rng = Prng.make 4711 in
  for i = 0 to 199 do
    let g = Tgen.random_pgraph rng ~n:(3 + Prng.int rng 6) ~extra:(Prng.int rng 4) ~vl:3 ~el:2 in
    let e = S.encoder () in
    Pgraph_io.encode_binary e g;
    let d = S.decoder (S.contents e) in
    let g' = Pgraph_io.decode_binary d in
    S.expect_end d;
    if not (pgraph_identical g g') then
      Alcotest.failf "pgraph %d not identical after round trip" i;
    (* Bit-identical factors imply bit-identical marginals. *)
    List.iter
      (fun eid ->
        if Pgraph.edge_marginal g eid <> Pgraph.edge_marginal g' eid then
          Alcotest.failf "pgraph %d: marginal of edge %d drifted" i eid)
      (Pgraph.uncertain_edges g)
  done

let test_pgdb_file_round_trip () =
  let rng = Prng.make 99 in
  let graphs =
    Array.init 50 (fun _ ->
        Tgen.random_pgraph rng ~n:(3 + Prng.int rng 5) ~extra:(Prng.int rng 3) ~vl:3 ~el:2)
  in
  with_tmp (fun path ->
      Pgraph_io.save_binary path graphs;
      let loaded = Pgraph_io.load_binary path in
      Alcotest.(check int) "count" 50 (Array.length loaded);
      Array.iteri
        (fun i g ->
          if not (pgraph_identical g loaded.(i)) then
            Alcotest.failf "graph %d not identical" i)
        graphs;
      (* load_auto sniffs binary... *)
      Alcotest.(check int) "auto binary" 50 (Array.length (Pgraph_io.load_auto path));
      (* ...and still reads text archives. *)
      Pgraph_io.save path graphs;
      Alcotest.(check int) "auto text" 50 (Array.length (Pgraph_io.load_auto path)))

let test_db_fingerprint_sensitivity () =
  let rng = Prng.make 7 in
  let graphs =
    Array.init 6 (fun _ -> Tgen.random_pgraph rng ~n:5 ~extra:2 ~vl:3 ~el:2)
  in
  let fp = Pgraph_io.db_fingerprint graphs in
  Alcotest.(check int32) "deterministic" fp (Pgraph_io.db_fingerprint graphs);
  let shorter = Array.sub graphs 0 5 in
  Alcotest.(check bool) "prefix differs" true
    (fp <> Pgraph_io.db_fingerprint shorter);
  let swapped = Array.copy graphs in
  swapped.(0) <- graphs.(1);
  swapped.(1) <- graphs.(0);
  Alcotest.(check bool) "order matters" true
    (fp <> Pgraph_io.db_fingerprint swapped)

(* --- features --- *)

let small_dataset seed n =
  Generator.generate
    { Generator.default_params with num_graphs = n; seed; min_vertices = 6;
      max_vertices = 10; motif_edges = 3 }

let fast_bounds = { Bounds.default_config with mc_samples = 400 }
let small_mining = { Selection.default_params with max_edges = 2; beta = 0.2 }

let test_feature_round_trip () =
  let ds = small_dataset 5 8 in
  let skeletons = Array.map Pgraph.skeleton ds.graphs in
  let features = Selection.select skeletons small_mining in
  Alcotest.(check bool) "some features mined" true (List.length features > 0);
  List.iter
    (fun (f : Selection.feature) ->
      let e = S.encoder () in
      Selection.encode_feature e f;
      let d = S.decoder (S.contents e) in
      let f' = Selection.decode_feature d in
      S.expect_end d;
      Alcotest.(check string) "key" f.key f'.key;
      Alcotest.(check (list int)) "support" f.support f'.support;
      Alcotest.(check (list int)) "strong" f.strong_support f'.strong_support;
      if not (lgraph_identical f.graph f'.graph) then
        Alcotest.fail "feature graph not identical")
    features

(* --- PMI and whole-database round trips --- *)

let build_db seed n =
  let ds = small_dataset seed n in
  (ds, Query.index_database ~mining:small_mining ~bounds:fast_bounds ds.graphs)

let entry_identical (a : Pmi.entry) (b : Pmi.entry) =
  Int64.bits_of_float a.Bounds.lower = Int64.bits_of_float b.Bounds.lower
  && Int64.bits_of_float a.upper = Int64.bits_of_float b.upper
  && Int64.bits_of_float a.lower_safe = Int64.bits_of_float b.lower_safe
  && Int64.bits_of_float a.upper_safe = Int64.bits_of_float b.upper_safe
  && a.embeddings = b.embeddings && a.cuts = b.cuts

let check_pmi_identical pmi pmi' =
  Alcotest.(check int) "features" (Pmi.num_features pmi) (Pmi.num_features pmi');
  Alcotest.(check int) "graphs" (Pmi.num_graphs pmi) (Pmi.num_graphs pmi');
  Alcotest.(check bool) "config" true (Pmi.config pmi = Pmi.config pmi');
  for fi = 0 to Pmi.num_features pmi - 1 do
    for gi = 0 to Pmi.num_graphs pmi - 1 do
      match Pmi.lookup pmi ~feature:fi ~graph:gi,
            Pmi.lookup pmi' ~feature:fi ~graph:gi with
      | None, None -> ()
      | Some a, Some b when entry_identical a b -> ()
      | _ -> Alcotest.failf "entry (%d,%d) differs after round trip" fi gi
    done
  done

let counters (s : Query.stats) =
  ( s.relaxed_count, s.structural_candidates, s.prob_candidates,
    s.accepted_by_bounds, s.pruned_by_bounds )

let check_same_answers ds db db' =
  let rng = Prng.make 1234 in
  let config = { Query.default_config with epsilon = 0.4; delta = 1 } in
  for trial = 1 to 4 do
    let q, _ = Generator.extract_query rng ds ~edges:4 in
    let a = Query.run db q config in
    let b = Query.run db' q config in
    Alcotest.(check (list int))
      (Printf.sprintf "trial %d answers" trial)
      a.Query.answers b.Query.answers;
    if counters a.stats <> counters b.stats then
      Alcotest.failf "trial %d: pruning counters differ" trial
  done

let test_pmi_save_load_bit_identical () =
  let ds, db = build_db 11 10 in
  with_tmp (fun path ->
      Pmi.save path ~db:ds.graphs db.Query.pmi;
      let pmi' = Pmi.load path ~db:ds.graphs in
      check_pmi_identical db.Query.pmi pmi';
      let db' = { db with Query.pmi = pmi' } in
      check_same_answers ds db db')

let test_database_save_load_bit_identical () =
  let ds, db = build_db 23 10 in
  with_tmp (fun path ->
      Query.save_database path db;
      let db' = Query.load_database path in
      Alcotest.(check int) "graphs" (Corpus.length db.Query.graphs)
        (Corpus.length db'.Query.graphs);
      Array.iteri
        (fun i g ->
          if not (pgraph_identical g (Corpus.get db'.Query.graphs i)) then
            Alcotest.failf "stored graph %d differs" i)
        (Corpus.to_array db.Query.graphs);
      Alcotest.(check int) "feature count"
        (List.length db.Query.features)
        (List.length db'.Query.features);
      check_pmi_identical db.Query.pmi db'.Query.pmi;
      Alcotest.(check bool) "structural counts" true
        (Structural.counts db.Query.structural
        = Structural.counts db'.Query.structural);
      check_same_answers ds db db')

(* --- rejection: version skew, kind and fingerprint mismatches --- *)

let expect_store_error what f =
  match f () with
  | _ -> Alcotest.failf "%s: accepted instead of raising Store_error" what
  | exception S.Store_error _ -> ()
  | exception e ->
    Alcotest.failf "%s: raised %s instead of Store_error" what
      (Printexc.to_string e)

let test_version_skew_rejected () =
  let ds, db = build_db 31 8 in
  with_tmp (fun path ->
      S.write_file ~version:(S.format_version + 1) path ~kind:S.Pmi_index
        (Pmi.to_sections ~db:ds.graphs db.Query.pmi);
      expect_store_error "future version" (fun () ->
          Pmi.load path ~db:ds.graphs))

let test_kind_mismatch_rejected () =
  let ds, _ = build_db 37 6 in
  with_tmp (fun path ->
      Pgraph_io.save_binary path ds.graphs;
      expect_store_error "pgdb loaded as pmi" (fun () ->
          Pmi.load path ~db:ds.graphs);
      expect_store_error "pgdb loaded as database" (fun () ->
          Query.load_database path))

let test_fingerprint_mismatch_rejected () =
  let ds, db = build_db 41 8 in
  let other = small_dataset 999 8 in
  with_tmp (fun path ->
      Pmi.save path ~db:ds.graphs db.Query.pmi;
      expect_store_error "different corpus" (fun () ->
          Pmi.load path ~db:other.graphs);
      expect_store_error "different size" (fun () ->
          Pmi.load path ~db:(Array.sub ds.graphs 0 5)))

let test_missing_and_garbage_files () =
  expect_store_error "missing file" (fun () ->
      Pmi.load "/nonexistent/psst.pmi" ~db:[||]);
  with_tmp (fun path ->
      write_bytes path "";
      expect_store_error "empty file" (fun () -> Pgraph_io.load_binary path);
      write_bytes path "this is not a store file at all.............";
      expect_store_error "garbage file" (fun () -> Pgraph_io.load_binary path))

(* --- corruption: truncations and byte flips --- *)

(* Sample positions inside [start, stop): the framing fields live at the
   front, so always hit the first bytes, plus a spread through the payload. *)
let sample_positions start stop =
  let head = List.init (min 24 (stop - start)) (fun i -> start + i) in
  let spread =
    List.init 7 (fun i -> start + ((stop - start - 1) * (i + 1) / 8))
  in
  List.sort_uniq compare (head @ spread @ [ stop - 1 ])

let test_corruption_detected () =
  let ds, db = build_db 53 8 in
  with_tmp (fun path ->
      Pmi.save path ~db:ds.graphs db.Query.pmi;
      let original = read_bytes path in
      let spans = S.section_spans original in
      (* config, db, features, layout, one entry shard (8 graphs fit one
         16-column shard), meta. *)
      Alcotest.(check int) "six sections" 6 (List.length spans);
      let reload () = ignore (Pmi.load path ~db:ds.graphs) in
      (* Sanity: the pristine file loads. *)
      reload ();
      (* Truncate at every section boundary, inside every section, and at
         a few header offsets. *)
      let boundaries =
        0 :: 1 :: (S.header_bytes - 1) :: S.header_bytes
        :: List.concat_map
             (fun (_, start, stop) -> [ start; start + 3; stop - 1; stop ])
             spans
      in
      List.iter
        (fun cut ->
          if cut < String.length original then begin
            write_bytes path (String.sub original 0 cut);
            expect_store_error (Printf.sprintf "truncated at %d" cut) reload
          end)
        boundaries;
      (* Flip bytes: the whole header, and a sample of every section
         (framing fields, payload start/middle/end). *)
      let positions =
        List.init S.header_bytes Fun.id
        @ List.concat_map (fun (_, start, stop) -> sample_positions start stop) spans
      in
      List.iter
        (fun pos ->
          let corrupt = Bytes.of_string original in
          Bytes.set corrupt pos
            (Char.chr (Char.code (Bytes.get corrupt pos) lxor 0xFF));
          write_bytes path (Bytes.to_string corrupt);
          expect_store_error (Printf.sprintf "byte %d flipped" pos) reload)
        positions;
      (* Restore and confirm the error path never cached anything. *)
      write_bytes path original;
      reload ())

(* --- Corpus.append on a mapped corpus (ingest on a zero-copy load) --- *)

(* Appending to an mmap-backed corpus materialises it first; the result
   must be indistinguishable from appending to an eager load of the same
   file — same length, bit-identical graphs, same fingerprint — whether
   the mapping was still lazy or partially / fully decoded when the
   append happened. *)
let test_mapped_append_differential () =
  let ds = small_dataset 171 9 in
  let extra = (small_dataset 173 4).Generator.graphs in
  let db =
    Query.index_database ~mining:small_mining ~bounds:fast_bounds ds.graphs
  in
  with_tmp (fun path ->
      Query.save_database ~flat:true path db;
      let eager = (Query.load_database path).Query.graphs in
      let reference = Corpus.append eager extra in
      List.iter
        (fun (label, prime) ->
          let mapped = (Query.load_database ~mmap:true path).Query.graphs in
          (* Decode none / some / all graphs off the map before the
             append, so memoisation state cannot leak into the result. *)
          for i = 0 to prime - 1 do
            ignore (Corpus.get mapped i)
          done;
          let appended = Corpus.append mapped extra in
          Alcotest.(check int)
            (label ^ ": length")
            (Corpus.length reference) (Corpus.length appended);
          for i = 0 to Corpus.length reference - 1 do
            if not (pgraph_identical (Corpus.get reference i) (Corpus.get appended i))
            then Alcotest.failf "%s: graph %d differs" label i
          done;
          Alcotest.(check int32)
            (label ^ ": fingerprint")
            (Corpus.fingerprint reference)
            (Corpus.fingerprint appended);
          (* The source mapping is untouched: still its original length,
             still serving every graph. *)
          Alcotest.(check int)
            (label ^ ": source length unchanged")
            (Corpus.length eager) (Corpus.length mapped);
          if not (pgraph_identical (Corpus.get eager 0) (Corpus.get mapped 0))
          then Alcotest.failf "%s: source graph 0 changed" label)
        [ ("lazy", 0); ("partially decoded", 4); ("fully decoded", 9) ])

let test_materialise_is_identity_on_eager () =
  let ds = small_dataset 179 5 in
  let c = Corpus.of_array ds.Generator.graphs in
  let m = Corpus.materialise c in
  Alcotest.(check int32) "same fingerprint" (Corpus.fingerprint c)
    (Corpus.fingerprint m);
  Alcotest.(check int) "same length" (Corpus.length c) (Corpus.length m);
  (* Appending an empty array is a no-op in content. *)
  let a = Corpus.append c [||] in
  Alcotest.(check int32) "append [||] keeps fingerprint"
    (Corpus.fingerprint c) (Corpus.fingerprint a)

(* --- flat image: mmap vs eager differential --- *)

(* Same queries, same answers, same pruning counters — eager classic
   layout vs eager flat decode vs zero-copy mmap, for a single-domain and
   a 4-domain index build. Each comparison runs twice on the same mapped
   database: first cold (every graph decode hits the mapping) and then
   warm (the corpus cache is populated), so memoisation cannot change
   answers. *)
let test_flat_mmap_differential () =
  List.iter
    (fun domains ->
      let ds = small_dataset (100 + domains) 10 in
      let db =
        Query.index_database ~mining:small_mining ~bounds:fast_bounds ~domains
          ds.graphs
      in
      with_tmp (fun path ->
          Query.save_database ~flat:true path db;
          let db_flat = Query.load_database path in
          let db_mmap = Query.load_database ~mmap:true path in
          Alcotest.(check int32)
            (Printf.sprintf "fingerprint (%d domains)" domains)
            (Corpus.fingerprint db.Query.graphs)
            (Corpus.fingerprint db_mmap.Query.graphs);
          check_same_answers ds db db_flat;
          check_same_answers ds db db_mmap (* cold: decodes off the map *);
          check_same_answers ds db db_mmap (* warm: memoised corpus *);
          check_pmi_identical db.Query.pmi db_mmap.Query.pmi))
    [ 1; 4 ]

let test_mmap_requires_flat () =
  let ds, db = build_db 61 8 in
  with_tmp (fun path ->
      Query.save_database path db;
      expect_store_error "classic layout refused under mmap" (fun () ->
          Query.load_database ~mmap:true path);
      (* And the salvage fallback still yields a working eager database. *)
      let db' = Query.load_database ~salvage:true ~mmap:true path in
      check_same_answers ds db db')

(* --- flat image: hostile inputs --- *)

(* Decode every lazily-validated region of a mapped database: all graphs
   (structural decode), every PMI entry (bound-count materialisation) and
   the structural count matrix. Cheap, and it touches everything a query
   could. *)
let mmap_probe path =
  let db = Query.load_database ~mmap:true path in
  for gi = 0 to Corpus.length db.Query.graphs - 1 do
    ignore (Corpus.get db.Query.graphs gi)
  done;
  for fi = 0 to Pmi.num_features db.Query.pmi - 1 do
    for gi = 0 to Pmi.num_graphs db.Query.pmi - 1 do
      ignore (Pmi.lookup db.Query.pmi ~feature:fi ~graph:gi)
    done
  done;
  ignore (Structural.counts db.Query.structural)

let test_flat_corruption_detected () =
  let ds, db = build_db 67 8 in
  with_tmp (fun path ->
      Query.save_database ~flat:true path db;
      let original = read_bytes path in
      let spans = S.section_spans original in
      (* Pristine image passes the full probe and the eager load. *)
      mmap_probe path;
      ignore (Query.load_database path);
      (* Truncations anywhere must fail cleanly at open (the directory
         walk or a missing required section catches them all). *)
      let boundaries =
        0 :: 1 :: (S.header_bytes - 1) :: S.header_bytes
        :: List.concat_map
             (fun (_, start, stop) -> [ start; start + 3; stop - 1; stop ])
             spans
      in
      List.iter
        (fun cut ->
          if cut < String.length original then begin
            write_bytes path (String.sub original 0 cut);
            expect_store_error
              (Printf.sprintf "truncated at %d" cut)
              (fun () -> mmap_probe path)
          end)
        boundaries;
      (* Byte flips: the eager loader checksums every payload, so it must
         always refuse. The mapped loader defers bulk checksums
         (DESIGN.md §15) — a flip may surface as Store_error at open or
         on access, or go structurally unnoticed in a lazily-read payload
         — but it must never escape the typed error space (no
         Invalid_argument, no Failure, no crash). *)
      let positions =
        List.init S.header_bytes Fun.id
        @ List.concat_map
            (fun (_, start, stop) -> sample_positions start stop)
            spans
      in
      List.iter
        (fun pos ->
          let corrupt = Bytes.of_string original in
          Bytes.set corrupt pos
            (Char.chr (Char.code (Bytes.get corrupt pos) lxor 0xFF));
          write_bytes path (Bytes.to_string corrupt);
          expect_store_error
            (Printf.sprintf "eager load, byte %d flipped" pos)
            (fun () -> ignore (Query.load_database path));
          match mmap_probe path with
          | () -> ()
          | exception S.Store_error _ -> ()
          | exception e ->
            Alcotest.failf "mmap probe, byte %d flipped: escaped as %s" pos
              (Printexc.to_string e))
        positions;
      (* Restore: nothing was cached across the error paths. *)
      write_bytes path original;
      mmap_probe path;
      let db' = Query.load_database ~mmap:true path in
      check_same_answers ds db db')

(* --- Pgraph_io JPT row validation (regression) --- *)

let test_jpt_row_sum_rejected () =
  (* Grossly over unity: previously rejected by Pgraph.make's generic
     chain-consistency error; now rejected up front with a diagnostic. *)
  (try
     ignore
       (Pgraph_io.of_string "pgraph\nv 0\nv 1\ne 0 1 0\nfactor 0 0.3 0.9\nend\n");
     Alcotest.fail "row sum 1.2 accepted"
   with Invalid_argument msg ->
     Alcotest.(check bool)
       (Printf.sprintf "diagnostic names the row (%s)" msg)
       true
       (String.length msg > 0
       && String.sub msg 0 9 = "Pgraph_io"
       && (let has_sub needle =
             let n = String.length needle and m = String.length msg in
             let rec go i = i + n <= m && (String.sub msg i n = needle || go (i + 1)) in
             go 0
           in
           has_sub "summing")));
  (* Regression: 1 + 5e-7 is within Pgraph.make's 1e-6 chain tolerance and
     used to be accepted, silently producing probabilities > 1 in Exact. *)
  (try
     ignore
       (Pgraph_io.of_string
          "pgraph\nv 0\nv 1\ne 0 1 0\nfactor 0 0.3 0.7000005\nend\n");
     Alcotest.fail "row sum 1 + 5e-7 accepted"
   with Invalid_argument _ -> ());
  (* A conditional factor with one over-unity row among valid ones. *)
  (try
     ignore
       (Pgraph_io.of_string
          ("pgraph\nv 0\nv 1\nv 2\ne 0 1 0\ne 1 2 0\n"
          ^ "factor 0 0.5 0.5\nfactor 0,1 0.2 0.9 0.5 0.5\nend\n"));
     Alcotest.fail "over-unity conditional row accepted"
   with Invalid_argument _ -> ());
  (* Valid rows still parse. *)
  let g =
    Pgraph_io.of_string "pgraph\nv 0\nv 1\ne 0 1 0\nfactor 0 0.3 0.7\nend\n"
  in
  Tgen.check_close "marginal" 0.7 (Pgraph.edge_marginal g 0)

let test_jpt_row_sum_rejected_binary () =
  (* Hand-craft a binary pgdb whose single factor row sums to 1.2: the
     binary reader must reject it with Store_error, not Invalid_argument. *)
  let graph_payload =
    let e = S.encoder () in
    (* one graph: 2 vertices, 1 edge, factor over edge 0 with table [0.3;0.9] *)
    S.put_i64 e 1;
    S.put_lgraph e (Lgraph.create ~vlabels:[| 0; 0 |] ~edges:[ (0, 1, 0) ]);
    S.put_i64 e 1;
    (* one factor *)
    S.put_int_list e [ 0 ];
    S.put_f64 e 0.3;
    S.put_f64 e 0.9;
    e
  in
  let meta = S.encoder () in
  S.put_i64 meta 1;
  with_tmp (fun path ->
      S.write_file path ~kind:S.Pgdb
        [ S.section "meta" meta; S.section "graphs" graph_payload ];
      expect_store_error "binary over-unity row" (fun () ->
          Pgraph_io.load_binary path))

(* --- ingest delta files (DESIGN.md §16, §17) --- *)

(* A delta side file is a regular sectioned store file, so it inherits
   the whole corruption discipline above. Pin the section layout the
   replication stream depends on, and that [Psst_ingest.delta_bytes]
   checksum-verifies the bytes before they leave the process — a
   primary's local disk rot is caught at the source, never streamed to
   a standby. Truncate at every byte boundary and flip every byte: the
   file is tiny, so the sweep is exhaustive. *)
let test_delta_file_checksummed () =
  let _, db = build_db 57 6 in
  with_tmp (fun path ->
      Query.save_database path db;
      let _, chain = Psst_ingest.load path in
      let extra = (small_dataset 59 2).Generator.graphs in
      Psst_ingest.save_delta chain ~prev_count:6 extra;
      let dpath = Psst_ingest.delta_path path 1 in
      Fun.protect
        ~finally:(fun () -> try Sys.remove dpath with Sys_error _ -> ())
        (fun () ->
          let original = read_bytes dpath in
          Alcotest.(check (list string))
            "delta section layout"
            [ "delta.meta"; "delta.graphs" ]
            (List.map (fun (n, _, _) -> n) (S.section_spans original));
          Alcotest.(check string) "pristine bytes pass verification" original
            (Psst_ingest.delta_bytes chain ~seq:1);
          for cut = 0 to String.length original - 1 do
            write_bytes dpath (String.sub original 0 cut);
            expect_store_error
              (Printf.sprintf "delta truncated at %d" cut)
              (fun () -> Psst_ingest.delta_bytes chain ~seq:1)
          done;
          for pos = 0 to String.length original - 1 do
            let corrupt = Bytes.of_string original in
            Bytes.set corrupt pos
              (Char.chr (Char.code (Bytes.get corrupt pos) lxor 0xFF));
            write_bytes dpath (Bytes.to_string corrupt);
            expect_store_error
              (Printf.sprintf "delta byte %d flipped" pos)
              (fun () -> Psst_ingest.delta_bytes chain ~seq:1)
          done;
          write_bytes dpath original;
          Alcotest.(check string) "restored bytes pass again" original
            (Psst_ingest.delta_bytes chain ~seq:1)))

let suite =
  [
    Alcotest.test_case "primitive round trip" `Quick test_primitive_round_trip;
    Alcotest.test_case "crc32 known vectors" `Quick test_crc32_known_vectors;
    Alcotest.test_case "lgraph round trip x200" `Quick test_lgraph_round_trip;
    Alcotest.test_case "pgraph round trip x200" `Quick test_pgraph_round_trip;
    Alcotest.test_case "pgdb file round trip" `Quick test_pgdb_file_round_trip;
    Alcotest.test_case "db fingerprint sensitivity" `Quick
      test_db_fingerprint_sensitivity;
    Alcotest.test_case "feature round trip" `Quick test_feature_round_trip;
    Alcotest.test_case "pmi save/load bit-identical" `Slow
      test_pmi_save_load_bit_identical;
    Alcotest.test_case "database save/load bit-identical" `Slow
      test_database_save_load_bit_identical;
    Alcotest.test_case "version skew rejected" `Quick test_version_skew_rejected;
    Alcotest.test_case "kind mismatch rejected" `Quick test_kind_mismatch_rejected;
    Alcotest.test_case "fingerprint mismatch rejected" `Quick
      test_fingerprint_mismatch_rejected;
    Alcotest.test_case "missing and garbage files" `Quick
      test_missing_and_garbage_files;
    Alcotest.test_case "corruption detected everywhere" `Slow
      test_corruption_detected;
    Alcotest.test_case "mapped append = eager append (lazy/partial/full)" `Quick
      test_mapped_append_differential;
    Alcotest.test_case "materialise is identity on eager corpora" `Quick
      test_materialise_is_identity_on_eager;
    Alcotest.test_case "flat mmap = eager (1 and 4 domains, cold+warm)" `Slow
      test_flat_mmap_differential;
    Alcotest.test_case "mmap refuses classic layout" `Quick
      test_mmap_requires_flat;
    Alcotest.test_case "flat corruption detected or contained" `Slow
      test_flat_corruption_detected;
    Alcotest.test_case "delta files checksummed end to end" `Quick
      test_delta_file_checksummed;
    Alcotest.test_case "jpt row sums rejected (text)" `Quick
      test_jpt_row_sum_rejected;
    Alcotest.test_case "jpt row sums rejected (binary)" `Quick
      test_jpt_row_sum_rejected_binary;
  ]
