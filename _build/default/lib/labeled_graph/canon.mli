(** Canonical forms for small labelled graphs.

    [code g] is a string such that two graphs get the same string iff they
    are isomorphic (respecting vertex and edge labels). Intended for the
    small graphs handled during feature mining and query relaxation
    (exponential worst case; fine up to ~12-14 vertices thanks to
    colour-refinement pruning). *)

val code : Lgraph.t -> string

(** [equal_iso a b] tests isomorphism via canonical codes. *)
val equal_iso : Lgraph.t -> Lgraph.t -> bool

(** Colour refinement (1-WL) classes: stable colour per vertex. Exposed for
    tests and for candidate ordering heuristics elsewhere. *)
val refine : Lgraph.t -> int array
