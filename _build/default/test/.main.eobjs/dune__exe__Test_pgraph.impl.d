test/test_pgraph.ml: Alcotest Array Distance Exact Factor Float Lgraph List Pgraph Printf Psst_util QCheck QCheck_alcotest Tgen Velim Vf2
