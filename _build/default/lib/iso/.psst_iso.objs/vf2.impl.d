lib/iso/vf2.ml: Array Embedding Hashtbl Lgraph List Psst_util
