lib/iso/embedding.ml: Array Format Psst_util
