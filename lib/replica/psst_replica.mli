(** Delta-stream replication (DESIGN.md §17).

    A standby is a full {!Psst_server} process started read-only
    ([writable = false]) from a copy of the primary's base index. It
    subscribes to the primary's delta stream ([Subscribe] from its
    chain's next sequence number), and for every received
    {!Psst_proto.reply.Delta_frame} — the {e exact on-disk bytes} of one
    [BASE.delta.K] file — validates, persists verbatim and publishes the
    new epoch through {!Psst_ingest.apply_replicated}, then sends
    [Replica_ack]. The standby's chain is byte-identical to the
    primary's, so its answers at an applied epoch are bit-identical to
    an offline run over the same chain, and promotion is just "stop the
    stream, flip [writable]".

    The primary side is the {!hub}: it owns one streaming thread per
    subscriber and implements {!Psst_server.publisher}, whose
    [pub_publish] gates each ingest ack on the subscribers'
    acknowledgements (semi-synchronous replication) — an acked batch is
    on every live standby's disk, which is what makes failover lossless.
    When the gate times out ([ack_timeout_ms]) the batch {e stays}
    applied and persisted but the client gets a retryable
    ["replication lagging"] error; retrying with the same idempotency
    token converges on an [Ok] without double-ingesting.

    Chaos: the standby's receive path consults the ["replica.stream"]
    fault site per frame ([Bitflip] corrupts the frame so validation
    rejects it before anything is persisted; [Fail]/[Partial_io] drop
    the connection; [Delay] builds replication lag), and its persist
    goes through the same ["store.write"] site as the primary's. *)

(** {1 Primary side} *)

type hub

(** [hub ?ack_timeout_ms chain] — a replication hub over the primary's
    delta chain. [ack_timeout_ms] (default 5000, [0.] = wait forever)
    bounds how long an ingest ack waits for standby acknowledgements
    before degrading to a retryable ["replication lagging"] error. *)
val hub : ?ack_timeout_ms:float -> Psst_ingest.chain -> hub

(** The {!Psst_server.publisher} to inject into [Psst_server.start] —
    arms both the subscription side ([Subscribe] connections stream
    delta frames from the requested sequence number) and the ack gate. *)
val publisher : hub -> Psst_server.publisher

(** Close every subscription and join the streaming threads. Stop the
    server first: with the hub gone, in-flight ingest acks degrade to
    [`No_standby] (plain standalone acks). Idempotent. *)
val stop_hub : hub -> unit

(** {1 Standby side} *)

type standby

(** [start_standby ~primary ~chain db_ref] spawns the replication loop:
    connect to [primary], subscribe from [chain.next_seq], apply every
    frame through {!Psst_ingest.apply_replicated} into [db_ref] (the
    standby server's {!Psst_server.snapshot_ref}), acknowledge, repeat.
    Any failure — connect refused, stream broken, frame rejected — drops
    the connection and reconnects from the chain's next sequence number
    with capped exponential backoff ([backoff_ms] doubled per attempt up
    to [max_backoff_ms], deterministic jitter), so a standby that
    outlives its primary keeps trying until the primary returns or it is
    promoted. The loop must be the process's only database mutator: run
    it in a server with [writable = false]. *)
val start_standby :
  ?connect_timeout_ms:float ->
  ?backoff_ms:float ->
  ?max_backoff_ms:float ->
  primary:Psst_proto.endpoint ->
  chain:Psst_ingest.chain ->
  Psst_ingest.snapshot Atomic.t ->
  standby

(** Stop the replication loop: no more frames are applied once this
    returns. Blocks until the loop thread joins; idempotent. *)
val stop_standby : standby -> unit

(** The highest delta sequence number applied so far ([0] = none;
    chains number their deltas from 1). *)
val applied_seq : standby -> int

(** [promote st server] — {!stop_standby}, then
    [Psst_server.set_writable server true], in that order (the stream
    and the ingest writer must never mutate concurrently). The promoted
    server accepts [Add_graphs] and appends to the replicated chain
    where the primary left off; every batch the primary ever acked is
    already in that chain. *)
val promote : standby -> Psst_server.t -> unit
