lib/labeled_graph/canon.mli: Lgraph
