test/test_core.ml: Alcotest Array Bounds Exact Float Generator Lgraph List Option Pgraph Pmi Printf Pruning Psst_util QCheck QCheck_alcotest Query Relax Selection Tgen Verify
