module Prng = Psst_util.Prng

let small_params =
  { Generator.default_params with num_graphs = 12; num_organisms = 3;
    min_vertices = 8; max_vertices = 12; seed = 5 }

let test_generate_shape () =
  let ds = Generator.generate small_params in
  Alcotest.(check int) "graph count" 12 (Array.length ds.graphs);
  Alcotest.(check int) "organism per graph" 12 (Array.length ds.organisms);
  Alcotest.(check int) "motifs" 3 (Array.length ds.motifs);
  Array.iter
    (fun o -> Alcotest.(check bool) "organism in range" true (o >= 0 && o < 3))
    ds.organisms

let test_graphs_connected_and_sized () =
  let ds = Generator.generate small_params in
  Array.iter
    (fun g ->
      let gc = Pgraph.skeleton g in
      Alcotest.(check bool) "connected" true (Lgraph.is_connected gc);
      Alcotest.(check bool) "vertex range" true (Lgraph.num_vertices gc >= 8))
    ds.graphs

let test_motif_embedded () =
  let ds = Generator.generate small_params in
  Array.iteri
    (fun gi g ->
      let o = ds.organisms.(gi) in
      Alcotest.(check bool)
        (Printf.sprintf "motif of organism %d in graph %d" o gi)
        true
        (Vf2.exists ds.motifs.(o) (Pgraph.skeleton g)))
    ds.graphs

let test_factors_consistent () =
  let ds = Generator.generate small_params in
  Array.iter
    (fun g ->
      (* Pgraph.make already validates chain consistency; re-check the
         junction tree can be built (running intersection). *)
      ignore (Pgraph.jtree g))
    ds.graphs

let test_every_edge_uncertain () =
  let ds = Generator.generate small_params in
  Array.iter
    (fun g ->
      Alcotest.(check int) "all edges covered by JPTs"
        (Lgraph.num_edges (Pgraph.skeleton g))
        (List.length (Pgraph.uncertain_edges g)))
    ds.graphs

let test_mean_edge_probability () =
  let ds = Generator.generate { small_params with num_graphs = 20 } in
  let probs =
    Array.to_list ds.graphs
    |> List.concat_map (fun g ->
           List.map (Pgraph.edge_marginal g) (Pgraph.uncertain_edges g))
  in
  let mean = Psst_util.Stats.mean probs in
  (* The max-rule JPT shifts marginals from the Beta target; just require a
     sensible high-probability regime. *)
  Alcotest.(check bool) (Printf.sprintf "mean prob %.3f in regime" mean) true
    (mean > 0.5 && mean < 0.95)

let test_extract_query () =
  let ds = Generator.generate small_params in
  let rng = Prng.make 9 in
  for _ = 1 to 10 do
    let q, org = Generator.extract_query rng ds ~edges:4 in
    Alcotest.(check int) "edges" 4 (Lgraph.num_edges q);
    Alcotest.(check bool) "connected" true (Lgraph.is_connected q);
    Alcotest.(check bool) "organism" true (org >= 0 && org < 3)
  done

let test_extract_query_too_large () =
  let ds = Generator.generate small_params in
  let rng = Prng.make 9 in
  try
    ignore (Generator.extract_query rng ds ~edges:10_000);
    Alcotest.fail "should reject oversized query"
  with Invalid_argument _ -> ()

let test_organism_members () =
  let ds = Generator.generate small_params in
  let all = List.concat_map (Generator.organism_members ds) [ 0; 1; 2 ] in
  Alcotest.(check int) "partition" 12 (List.length (List.sort_uniq compare all))

let test_independent_db () =
  let ds = Generator.generate small_params in
  let ind = Generator.independent_db ds in
  Array.iteri
    (fun gi g ->
      List.iter
        (fun e ->
          Tgen.check_close ~eps:1e-9 "marginals preserved"
            (Pgraph.edge_marginal ds.graphs.(gi) e)
            (Pgraph.edge_marginal g e))
        (Pgraph.uncertain_edges g))
    ind

let test_grafted_motif_embeds () =
  let ds =
    Generator.generate
      { small_params with foreign_motif_prob = 1.0; num_graphs = 6 }
  in
  Array.iteri
    (fun gi g ->
      match ds.grafts.(gi) with
      | None -> Alcotest.fail "graft probability 1.0 must graft everywhere"
      | Some o ->
        Alcotest.(check bool) "foreign motif embeds" true
          (Vf2.exists ds.motifs.(o) (Pgraph.skeleton g)))
    ds.graphs

let test_graft_suppressed_under_correlation () =
  (* The defining property of a foreign graft: the independent projection
     overestimates the probability that the whole graft co-exists. *)
  let ds =
    Generator.generate
      { small_params with foreign_motif_prob = 1.0; num_graphs = 6 }
  in
  let checked = ref 0 in
  Array.iteri
    (fun gi g ->
      let o = Option.get ds.grafts.(gi) in
      match Vf2.find_one ds.motifs.(o) (Pgraph.skeleton g) with
      | None -> ()
      | Some emb ->
        let edges = Psst_util.Bitset.elements emb.Embedding.edges in
        let cor = Velim.prob_all_present (Pgraph.factors g) edges in
        let ind =
          Velim.prob_all_present
            (Pgraph.factors (Pgraph.to_independent g))
            edges
        in
        incr checked;
        Alcotest.(check bool)
          (Printf.sprintf "graph %d: IND %.4f >= COR %.4f" gi ind cor)
          true (ind >= cor -. 1e-9))
    ds.graphs;
  Alcotest.(check bool) "some grafts checked" true (!checked >= 3)

let test_no_graft_when_disabled () =
  let ds =
    Generator.generate { small_params with foreign_motif_prob = 0.0 }
  in
  Array.iter
    (function
      | None -> ()
      | Some _ -> Alcotest.fail "graft with probability 0")
    ds.grafts

let test_from_motif_query_within_core () =
  let ds = Generator.generate small_params in
  let rng = Prng.make 21 in
  for _ = 1 to 10 do
    let q, org = Generator.extract_query ~from_motif:true rng ds ~edges:3 in
    (* A core query must embed in the organism's motif region of at least
       one member (its source), and its labels come from the motif. *)
    let members = Generator.organism_members ds org in
    Alcotest.(check bool) "embeds in some member" true
      (List.exists (fun gi -> Vf2.exists q (Pgraph.skeleton ds.graphs.(gi))) members)
  done

let test_queries_match_home_organism () =
  (* A query extracted from an organism's graph should at least match its
     own source structurally. *)
  let ds = Generator.generate small_params in
  let rng = Prng.make 13 in
  let hits = ref 0 and total = ref 0 in
  for _ = 1 to 10 do
    let q, org = Generator.extract_query rng ds ~edges:4 in
    let members = Generator.organism_members ds org in
    incr total;
    if
      List.exists
        (fun gi -> Distance.within q (Pgraph.skeleton ds.graphs.(gi)) ~delta:1)
        members
    then incr hits
  done;
  Alcotest.(check bool) "most queries match home organism" true
    (!hits >= !total - 1)

let suite =
  [
    Alcotest.test_case "generate shape" `Quick test_generate_shape;
    Alcotest.test_case "graphs connected" `Quick test_graphs_connected_and_sized;
    Alcotest.test_case "motif embedded" `Quick test_motif_embedded;
    Alcotest.test_case "factors consistent" `Quick test_factors_consistent;
    Alcotest.test_case "all edges uncertain" `Quick test_every_edge_uncertain;
    Alcotest.test_case "mean edge probability" `Quick test_mean_edge_probability;
    Alcotest.test_case "extract query" `Quick test_extract_query;
    Alcotest.test_case "extract query too large" `Quick test_extract_query_too_large;
    Alcotest.test_case "organism members" `Quick test_organism_members;
    Alcotest.test_case "independent db" `Quick test_independent_db;
    Alcotest.test_case "queries match home organism" `Slow
      test_queries_match_home_organism;
    Alcotest.test_case "grafted motif embeds" `Quick test_grafted_motif_embeds;
    Alcotest.test_case "graft suppressed under correlation" `Quick
      test_graft_suppressed_under_correlation;
    Alcotest.test_case "no graft when disabled" `Quick test_no_graft_when_disabled;
    Alcotest.test_case "core queries embed at home" `Quick
      test_from_motif_query_within_core;
  ]
