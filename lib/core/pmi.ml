type entry = Bounds.t

(* The flat backing (DESIGN.md §15): per-feature delta-coded postings plus
   a fixed-width IEEE-754 bounds array, both read zero-copy out of a
   memory-mapped store file. [d_rank] is the cumulative filled-entry count
   before the feature — the feature's first bounds record lives at float
   index [6 * d_rank]. *)
type flat_dir = { d_count : int; d_off : int; d_len : int; d_rank : int }

type flat = {
  f_dir : flat_dir array; (* per feature *)
  f_postings : Psst_store.bigbytes;
  f_bounds : Psst_store.floats;
  f_block : int;
  f_filled : int;
}

type backing =
  | Heap of entry option array array (* feature -> graph *)
  | Flat of flat

type t = {
  config : Bounds.config;
  features : Selection.feature array;
  backing : backing;
  num_graphs : int;
  build_seconds : float;
}

module S = Psst_store

let log_src = Logs.Src.create "psst.pmi" ~doc:"PMI index construction"

module Log = (val Logs.src_log log_src)

(* The matrix is computed column-by-column (per graph) so that the world
   pool of each graph is sampled once and the columns can be distributed
   over domains: every column touches exactly one Pgraph, so the lazily
   built junction trees never contend. Columns land at their graph index,
   hence the build is independent of how the pool schedules them. *)
let m_columns = Psst_obs.counter "pmi.columns_built"
let h_column = Psst_obs.histogram "pmi.column_build_s"

let build_column config db features gi =
  Psst_obs.incr m_columns;
  Psst_obs.span h_column (fun () ->
      let nf = Array.length features in
      let g = db.(gi) in
      let world_pool = lazy (Bounds.sample_pool config g) in
      Array.init nf (fun fi ->
          let f : Selection.feature = features.(fi) in
          if List.mem gi f.support then
            Some (Bounds.compute config ~pool:(Lazy.force world_pool) g f.graph)
          else None))

let build ?(config = Bounds.default_config) ?(domains = 1) db features =
  let features = Array.of_list features in
  let ng = Array.length db in
  let nf = Array.length features in
  let result, build_seconds =
    Psst_util.Timer.time (fun () ->
        let d = max 1 (min domains ng) in
        if d > 1 then Log.debug (fun m -> m "building %d columns on %d domains" ng d);
        let columns =
          Psst_util.Pool.with_pool ~domains:d (fun pool ->
              Psst_util.Pool.map_array pool ~chunk:1
                (build_column config db features)
                (Array.init ng Fun.id))
        in
        (* Transpose columns into the feature-major layout. *)
        Array.init nf (fun fi -> Array.init ng (fun gi -> columns.(gi).(fi))))
  in
  Log.info (fun m ->
      m "PMI built: %d features x %d graphs in %.2fs" nf ng build_seconds);
  { config; features; backing = Heap result; num_graphs = ng; build_seconds }

(* --- flat-backing primitives ---

   Shared by the zero-copy lookup path, the eager decoder and the open-time
   validator. Postings region layout per feature (byte offsets relative to
   the postings payload):

     u32 n_blocks
     n_blocks x { u32 first_gid; u32 body_off }      skip entries
     block bodies: LEB128 deltas (>= 1) between consecutive graph ids

   Block k covers within-feature ranks [k*block .. min((k+1)*block, count)-1];
   its first graph id sits in the skip entry, the remaining ids are deltas in
   the body at [body_off] (relative to the start of the bodies area). *)

let flat_block = 128

let flat_u32 (b : S.bigbytes) at =
  let g i = Char.code (Bigarray.Array1.get b (at + i)) in
  g 0 lor (g 1 lsl 8) lor (g 2 lsl 16) lor (g 3 lsl 24)

(* Unchecked varint over validated postings: [Bigarray] still bounds-checks,
   so even hostile bytes cannot read outside the mapping. *)
let flat_varint (b : S.bigbytes) pos =
  let acc = ref 0 and shift = ref 0 and p = ref pos and cont = ref true in
  while !cont do
    let c = Char.code (Bigarray.Array1.get b !p) in
    incr p;
    acc := !acc lor ((c land 0x7f) lsl !shift);
    shift := !shift + 7;
    cont := c land 0x80 <> 0
  done;
  (!acc, !p)

let flat_varint_checked (b : S.bigbytes) pos stop fi =
  let acc = ref 0 and shift = ref 0 and p = ref pos and cont = ref true in
  while !cont do
    if !p >= stop then S.error "flat postings: feature %d region overrun" fi;
    if !shift > 56 then S.error "flat postings: feature %d varint overflow" fi;
    let c = Char.code (Bigarray.Array1.get b !p) in
    incr p;
    acc := !acc lor ((c land 0x7f) lsl !shift);
    shift := !shift + 7;
    cont := c land 0x80 <> 0
  done;
  if !acc < 0 then S.error "flat postings: feature %d varint overflow" fi;
  (!acc, !p)

(* Full validating walk over every posting; [emit fi rank gid] is called for
   each, with [rank] the within-feature rank. Both the eager decoder and the
   mmap open-time validator use this, so the two paths accept exactly the
   same byte strings. *)
let scan_postings (p : S.bigbytes) (dir : flat_dir array) ~block ~ng emit =
  Array.iteri
    (fun fi de ->
      let stop = de.d_off + de.d_len in
      let u32 at =
        if at < de.d_off || at + 4 > stop then
          S.error "flat postings: feature %d region overrun" fi;
        flat_u32 p at
      in
      let nb = u32 de.d_off in
      let expect_nb = if de.d_count = 0 then 0 else ((de.d_count - 1) / block) + 1 in
      if nb <> expect_nb then
        S.error "flat postings: feature %d has %d skip blocks, expected %d" fi
          nb expect_nb;
      let bodies = de.d_off + 4 + (8 * nb) in
      if bodies > stop then S.error "flat postings: feature %d region overrun" fi;
      let pos = ref bodies in
      let prev = ref (-1) in
      for k = 0 to nb - 1 do
        let g0 = u32 (de.d_off + 4 + (8 * k)) in
        let boff = u32 (de.d_off + 4 + (8 * k) + 4) in
        if bodies + boff <> !pos then
          S.error "flat postings: feature %d block %d body offset mismatch" fi k;
        if g0 <= !prev then
          S.error "flat postings: feature %d graph ids not strictly increasing"
            fi;
        if g0 >= ng then
          S.error "flat postings: feature %d mentions graph %d of a %d-graph \
                   database"
            fi g0 ng;
        let lo = k * block in
        let hi = min de.d_count ((k + 1) * block) in
        emit fi lo g0;
        let cur = ref g0 in
        for i = lo + 1 to hi - 1 do
          let v, p' = flat_varint_checked p !pos stop fi in
          pos := p';
          if v < 1 then
            S.error "flat postings: feature %d non-positive delta" fi;
          cur := !cur + v;
          if !cur >= ng then
            S.error "flat postings: feature %d mentions graph %d of a \
                     %d-graph database"
              fi !cur ng;
          emit fi i !cur
        done;
        prev := !cur
      done;
      if !pos <> stop then
        S.error "flat postings: feature %d region has %d trailing bytes" fi
          (stop - !pos))
    dir

(* Count fields are validated here, on materialisation, not at open time:
   the bounds payload is the bulk of the image and a streaming scan of it
   at open would defeat the O(mmap) cold start. A corrupted count still
   surfaces as a clean [Store_error], just at first lookup. *)
let flat_count what v =
  if not (Float.is_integer v) || v < 0. || v > 9.0e15 then
    S.error "flat bounds: invalid %s %g" what v;
  int_of_float v

let flat_entry fl idx : entry =
  let b i = Bigarray.Array1.get fl.f_bounds ((idx * 6) + i) in
  {
    Bounds.lower = b 0;
    upper = b 1;
    lower_safe = b 2;
    upper_safe = b 3;
    embeddings = flat_count "embedding count" (b 4);
    cuts = flat_count "cut count" (b 5);
  }

let flat_lookup fl ~feature ~graph =
  let de = fl.f_dir.(feature) in
  if de.d_count = 0 then None
  else begin
    let p = fl.f_postings in
    let base = de.d_off in
    let nb = flat_u32 p base in
    let first k = flat_u32 p (base + 4 + (8 * k)) in
    if graph < first 0 then None
    else begin
      (* greatest block whose first id is <= graph *)
      let lo = ref 0 and hi = ref (nb - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi + 1) / 2 in
        if first mid <= graph then lo := mid else hi := mid - 1
      done;
      let k = !lo in
      let g0 = first k in
      let start_rank = k * fl.f_block in
      if g0 = graph then Some (flat_entry fl (de.d_rank + start_rank))
      else begin
        let blk_n = min fl.f_block (de.d_count - start_rank) in
        let bodies = base + 4 + (8 * nb) in
        let pos = ref (bodies + flat_u32 p (base + 4 + (8 * k) + 4)) in
        let cur = ref g0 in
        let found = ref (-1) in
        let i = ref 1 in
        while !found < 0 && !i < blk_n && !cur < graph do
          let v, p' = flat_varint p !pos in
          pos := p';
          cur := !cur + v;
          if !cur = graph then found := de.d_rank + start_rank + !i;
          incr i
        done;
        if !found < 0 then None else Some (flat_entry fl !found)
      end
    end
  end

(* Offline operations ([sub], [concat], [add_graphs], re-encoding) work on
   the heap matrix; a flat-backed index materialises one first. The floats
   come straight off the bounds array, so the materialised matrix is
   bit-identical to what the eager loader would have produced. *)
let entries_matrix t =
  match t.backing with
  | Heap e -> e
  | Flat fl ->
    let nf = Array.length t.features and ng = t.num_graphs in
    let entries = Array.init nf (fun _ -> Array.make ng None) in
    scan_postings fl.f_postings fl.f_dir ~block:fl.f_block ~ng
      (fun fi rank gid ->
        entries.(fi).(gid) <- Some (flat_entry fl (fl.f_dir.(fi).d_rank + rank)));
    entries

(* Incremental insertion. Alongside the new bound columns, the mined
   features' support lists must absorb the new graph ids: supports drive
   [build_column] on a reload and the structural filter's count rows, so a
   stale support would silently drop the graph from both after a
   save/load round trip. Supports stay sorted because new ids are the
   largest in the database. One [Array.append] per row per batch keeps a
   bulk load of k graphs at O(nf * (ng + k)) instead of O(nf * ng * k). *)
let add_graphs t gs =
  let k = Array.length gs in
  if k = 0 then t
  else begin
    let base = t.num_graphs in
    let nf = Array.length t.features in
    let skels = Array.map Pgraph.skeleton gs in
    (* occurs.(i).(fi): does feature fi occur in the skeleton of gs.(i)? *)
    let occurs =
      Array.map
        (fun gc ->
          Array.map
            (fun (f : Selection.feature) -> Vf2.exists f.graph gc)
            t.features)
        skels
    in
    let columns =
      Array.mapi
        (fun i g ->
          Psst_obs.incr m_columns;
          Psst_obs.span h_column (fun () ->
              let pool = lazy (Bounds.sample_pool t.config g) in
              Array.init nf (fun fi ->
                  let f = t.features.(fi) in
                  if Lgraph.num_edges f.Selection.graph = 0 || occurs.(i).(fi)
                  then
                    Some
                      (Bounds.compute t.config ~pool:(Lazy.force pool) g
                         f.Selection.graph)
                  else None)))
        gs
    in
    let entries =
      Array.mapi
        (fun fi row -> Array.append row (Array.init k (fun i -> columns.(i).(fi))))
        (entries_matrix t)
    in
    let features =
      Array.mapi
        (fun fi (f : Selection.feature) ->
          let extra = ref [] in
          for i = k - 1 downto 0 do
            if occurs.(i).(fi) then extra := (base + i) :: !extra
          done;
          if !extra = [] then f
          else { f with Selection.support = f.support @ !extra })
        t.features
    in
    { t with features; backing = Heap entries; num_graphs = base + k }
  end

let add_graph t g = add_graphs t [| g |]

(* Slicing and concatenation back the shard store (lib/shard). Both are
   pure re-arrangements of already-computed state: [sub] never recomputes
   a bound (which would be sound — [build_column] is content-deterministic
   — but would defeat the point of splitting an indexed database), and
   [concat (sub ..)] pieces round-trip the original matrix bit-exactly,
   support lists included. Features are rebased to local ids so a shard
   is a fully self-contained database over its own [0 .. len-1] range. *)

let rebase_support ~base ~len l =
  List.filter_map
    (fun gi -> if gi >= base && gi < base + len then Some (gi - base) else None)
    l

let sub t ~base ~len =
  if base < 0 || len < 0 || base + len > t.num_graphs then
    invalid_arg
      (Printf.sprintf "Pmi.sub: range %d..%d outside 0..%d" base (base + len)
         t.num_graphs);
  let features =
    Array.map
      (fun (f : Selection.feature) ->
        {
          f with
          Selection.support = rebase_support ~base ~len f.support;
          strong_support = rebase_support ~base ~len f.strong_support;
        })
      t.features
  in
  let entries = Array.map (fun row -> Array.sub row base len) (entries_matrix t) in
  { t with features; backing = Heap entries; num_graphs = len }

let concat = function
  | [] -> invalid_arg "Pmi.concat: empty list"
  | first :: _ as parts ->
    let nf = Array.length first.features in
    List.iteri
      (fun i p ->
        if p.config <> first.config then
          invalid_arg "Pmi.concat: parts built with different bound configs";
        if Array.length p.features <> nf then
          invalid_arg "Pmi.concat: parts mined different feature sets";
        Array.iteri
          (fun fi (f : Selection.feature) ->
            if f.key <> first.features.(fi).Selection.key then
              invalid_arg
                (Printf.sprintf
                   "Pmi.concat: part %d feature %d is %s, expected %s" i fi
                   f.key first.features.(fi).Selection.key))
          p.features)
      parts;
    let offsets =
      let acc = ref 0 in
      List.map
        (fun p ->
          let o = !acc in
          acc := o + p.num_graphs;
          o)
        parts
    in
    let num_graphs = List.fold_left (fun a p -> a + p.num_graphs) 0 parts in
    let features =
      Array.init nf (fun fi ->
          let f = first.features.(fi) in
          let gather proj =
            List.concat
              (List.map2
                 (fun p off -> List.map (fun gi -> gi + off) (proj p.features.(fi)))
                 parts offsets)
          in
          {
            f with
            Selection.support = gather (fun f -> f.Selection.support);
            strong_support = gather (fun f -> f.Selection.strong_support);
          })
    in
    let mats = List.map entries_matrix parts in
    let entries =
      Array.init nf (fun fi -> Array.concat (List.map (fun m -> m.(fi)) mats))
    in
    let build_seconds =
      List.fold_left (fun a p -> Float.max a p.build_seconds) 0. parts
    in
    {
      config = first.config;
      features;
      backing = Heap entries;
      num_graphs;
      build_seconds;
    }

let config t = t.config
let features t = Array.copy t.features
let num_features t = Array.length t.features
let num_graphs t = t.num_graphs

let lookup t ~feature ~graph =
  match t.backing with
  | Heap e -> e.(feature).(graph)
  | Flat fl -> flat_lookup fl ~feature ~graph

let column t ~graph =
  match t.backing with
  | Heap e ->
    let out = ref [] in
    for fi = Array.length t.features - 1 downto 0 do
      match e.(fi).(graph) with
      | Some e -> out := (fi, e) :: !out
      | None -> ()
    done;
    !out
  | Flat fl ->
    let out = ref [] in
    for fi = Array.length t.features - 1 downto 0 do
      match flat_lookup fl ~feature:fi ~graph with
      | Some e -> out := (fi, e) :: !out
      | None -> ()
    done;
    !out

let filled_entries t =
  match t.backing with
  | Heap entries ->
    Array.fold_left
      (fun acc row ->
        acc
        + Array.fold_left (fun a -> function Some _ -> a + 1 | None -> a) 0 row)
      0 entries
  | Flat fl -> fl.f_filled

let backing t = match t.backing with Heap _ -> `Heap | Flat _ -> `Flat
let build_seconds t = t.build_seconds

(* --- persistence (DESIGN.md §9) --- *)

let encode_entry e (b : entry) =
  S.put_f64 e b.Bounds.lower;
  S.put_f64 e b.upper;
  S.put_f64 e b.lower_safe;
  S.put_f64 e b.upper_safe;
  S.put_i64 e b.embeddings;
  S.put_i64 e b.cuts

let decode_entry d : entry =
  let lower = S.get_f64 d in
  let upper = S.get_f64 d in
  let lower_safe = S.get_f64 d in
  let upper_safe = S.get_f64 d in
  let embeddings = S.get_nat d in
  let cuts = S.get_nat d in
  { Bounds.lower; upper; lower_safe; upper_safe; embeddings; cuts }

(* The bound matrix is stored as graph-column shards of [shard_width]
   columns each ("pmi.entries.<k>"), not one monolithic section: each shard
   carries its own CRC, so a corrupted byte damages one shard and a salvage
   load can keep every other column and rebuild only the damaged ones with
   [build_column] (which is deterministic per (config, db, features, gi) —
   the salvage result is bit-identical to a full rebuild). "pmi.layout"
   records the geometry so readers know which shards to expect. *)
let shard_width = 16
let shard_name k = Printf.sprintf "pmi.entries.%d" k
let num_shards ng = if ng = 0 then 0 else ((ng - 1) / shard_width) + 1
let m_salvaged = Psst_obs.counter "store.salvaged_columns"

(* The small metadata sections are shared verbatim between the eager
   (sharded) and flat images, so both carry the same validation surface. *)
let small_sections ~db t =
  let config = S.encoder () in
  S.put_i64 config t.config.Bounds.emb_cap;
  S.put_i64 config t.config.cut_cap;
  S.put_i64 config t.config.mc_samples;
  S.put_i64 config t.config.clique_budget;
  S.put_bool config t.config.tightest;
  S.put_i64 config t.config.seed;
  let dbsec = S.encoder () in
  S.put_i64 dbsec (Array.length db);
  S.put_i32 dbsec (Pgraph_io.db_fingerprint db);
  let features = S.encoder () in
  S.put_array features Selection.encode_feature t.features;
  let meta = S.encoder () in
  S.put_f64 meta t.build_seconds;
  ( S.section "pmi.config" config,
    S.section "pmi.db" dbsec,
    S.section "pmi.features" features,
    S.section "pmi.meta" meta )

let to_sections ~db t =
  let config, dbsec, features, meta = small_sections ~db t in
  let nf = num_features t and ng = num_graphs t in
  let entries = entries_matrix t in
  let layout = S.encoder () in
  S.put_i64 layout nf;
  S.put_i64 layout ng;
  S.put_i64 layout shard_width;
  let shards =
    List.init (num_shards ng) (fun k ->
        let e = S.encoder () in
        let lo = k * shard_width and hi = min ng ((k + 1) * shard_width) in
        for gi = lo to hi - 1 do
          for fi = 0 to nf - 1 do
            S.put_option e encode_entry entries.(fi).(gi)
          done
        done;
        S.section (shard_name k) e)
  in
  config :: dbsec :: features
  :: S.section "pmi.layout" layout
  :: (shards @ [ meta ])

(* --- flat image codec (DESIGN.md §15) --- *)

let flat_dir_name = "pmi.flat.dir"
let flat_postings_name = "pmi.flat.postings"
let flat_bounds_name = "pmi.flat.bounds"

let count_as_float what v =
  let f = Float.of_int v in
  if v < 0 || Float.to_int f <> v then
    S.error "flat bounds: %s %d is not exactly representable" what v;
  f

let flat_sections ~db t =
  let config, dbsec, features, meta = small_sections ~db t in
  let nf = num_features t and ng = t.num_graphs in
  let block = flat_block in
  (* Posting rows via [lookup], so any backing can be re-encoded. *)
  let rows =
    Array.init nf (fun fi ->
        let acc = ref [] in
        for gi = ng - 1 downto 0 do
          match lookup t ~feature:fi ~graph:gi with
          | Some e -> acc := (gi, e) :: !acc
          | None -> ()
        done;
        Array.of_list !acc)
  in
  let filled = Array.fold_left (fun a r -> a + Array.length r) 0 rows in
  let dir = S.encoder () in
  S.put_i64 dir nf;
  S.put_i64 dir ng;
  S.put_i64 dir block;
  S.put_i64 dir filled;
  let postings = S.encoder () in
  let bounds = S.encoder () in
  let put_u32 e v = S.put_i32 e (Int32.of_int v) in
  let off = ref 0 in
  Array.iter
    (fun row ->
      let n = Array.length row in
      let nb = if n = 0 then 0 else ((n - 1) / block) + 1 in
      let bodies = S.encoder () in
      let skips = Array.make nb (0, 0) in
      for k = 0 to nb - 1 do
        let lo = k * block and hi = min n ((k + 1) * block) in
        skips.(k) <- (fst row.(lo), S.enc_length bodies);
        for i = lo + 1 to hi - 1 do
          S.put_varint bodies (fst row.(i) - fst row.(i - 1))
        done
      done;
      put_u32 postings nb;
      Array.iter
        (fun (g, o) ->
          put_u32 postings g;
          put_u32 postings o)
        skips;
      let body = S.contents bodies in
      S.put_raw postings body;
      let len = 4 + (8 * nb) + String.length body in
      S.put_i64 dir n;
      S.put_i64 dir !off;
      S.put_i64 dir len;
      off := !off + len;
      Array.iter
        (fun (_, (e : entry)) ->
          S.put_f64 bounds e.Bounds.lower;
          S.put_f64 bounds e.upper;
          S.put_f64 bounds e.lower_safe;
          S.put_f64 bounds e.upper_safe;
          S.put_f64 bounds (count_as_float "embedding count" e.embeddings);
          S.put_f64 bounds (count_as_float "cut count" e.cuts))
        row)
    rows;
  [
    config;
    dbsec;
    features;
    S.section flat_dir_name dir;
    S.section flat_postings_name postings;
    S.section flat_bounds_name bounds;
    meta;
  ]

let decode_flat_dir payload ~nf ~ng ~postings_len ~bounds_len =
  let d = S.decoder ~name:flat_dir_name payload in
  let snf = S.get_nat d in
  let sng = S.get_nat d in
  let block = S.get_nat d in
  let filled = S.get_nat d in
  if snf <> nf then S.error "flat directory has %d rows for %d features" snf nf;
  if sng <> ng then S.error "flat directory has %d columns for %d graphs" sng ng;
  if block < 1 then S.error "flat directory block size %d must be >= 1" block;
  if bounds_len <> filled * 48 then
    S.error "flat bounds payload is %d bytes for %d filled entries" bounds_len
      filled;
  let run_off = ref 0 and run_rank = ref 0 in
  let dir =
    Array.init nf (fun fi ->
        let count = S.get_nat d in
        let off = S.get_nat d in
        let len = S.get_nat d in
        if count > ng then
          S.error "flat directory: feature %d has %d postings for %d graphs" fi
            count ng;
        if off <> !run_off then
          S.error "flat directory: feature %d region at offset %d, expected %d"
            fi off !run_off;
        if len < 4 || off + len > postings_len then
          S.error "flat directory: feature %d region %d+%d outside %d-byte \
                   postings payload"
            fi off len postings_len;
        let rank = !run_rank in
        run_off := off + len;
        run_rank := rank + count;
        { d_count = count; d_off = off; d_len = len; d_rank = rank })
  in
  S.expect_end d;
  if !run_off <> postings_len then
    S.error "flat directory: regions cover %d of %d postings bytes" !run_off
      postings_len;
  if !run_rank <> filled then
    S.error "flat directory: feature counts sum to %d, filled total is %d"
      !run_rank filled;
  (dir, filled, block)

let big_of_string s : S.bigbytes =
  let n = String.length s in
  let b = Bigarray.Array1.create Bigarray.char Bigarray.c_layout n in
  for i = 0 to n - 1 do
    Bigarray.Array1.unsafe_set b i (String.unsafe_get s i)
  done;
  b

(* Eager decode of a flat image into the heap matrix — used when a flat
   store file is loaded without [~mmap]. Bit-identical to the matrix the
   zero-copy path exposes through [lookup]. *)
let heap_of_flat_sections sections ~nf ~ng =
  let postings_s = S.find_section sections flat_postings_name in
  let bounds_s = S.find_section sections flat_bounds_name in
  let dir, _filled, block =
    decode_flat_dir
      (S.find_section sections flat_dir_name)
      ~nf ~ng
      ~postings_len:(String.length postings_s)
      ~bounds_len:(String.length bounds_s)
  in
  let p = big_of_string postings_s in
  let bound_at i = Int64.float_of_bits (String.get_int64_le bounds_s (i * 8)) in
  let check_count what v =
    if not (Float.is_integer v) || v < 0. || v > 9.0e15 then
      S.error "flat bounds: invalid %s %g" what v;
    int_of_float v
  in
  let entries = Array.init nf (fun _ -> Array.make ng None) in
  scan_postings p dir ~block ~ng (fun fi rank gid ->
      let idx = dir.(fi).d_rank + rank in
      let b i = bound_at ((idx * 6) + i) in
      entries.(fi).(gid) <-
        Some
          {
            Bounds.lower = b 0;
            upper = b 1;
            lower_safe = b 2;
            upper_safe = b 3;
            embeddings = check_count "embedding count" (b 4);
            cuts = check_count "cut count" (b 5);
          });
  entries

(* Decode + validate the small metadata sections, shared by every load
   path (eager sharded, eager flat, zero-copy mapped). [fp] recomputes the
   database fingerprint when identity must be re-proven — the eager paths
   always do; the zero-copy query path skips it (its graphs live in the
   same atomically-written container as the index, so identity is
   intrinsic, and re-fingerprinting would force the decode the mapping
   exists to avoid). *)
let decode_small_sections ~ng ~fp sections =
  let config =
    S.decode_section sections "pmi.config" (fun d ->
        let emb_cap = S.get_nat d in
        let cut_cap = S.get_nat d in
        let mc_samples = S.get_nat d in
        let clique_budget = S.get_nat d in
        let tightest = S.get_bool d in
        let seed = S.get_i64 d in
        { Bounds.emb_cap; cut_cap; mc_samples; clique_budget; tightest; seed })
  in
  S.decode_section sections "pmi.db" (fun d ->
      let stored_ng = S.get_nat d in
      let stored_fp = S.get_i32 d in
      if stored_ng <> ng then
        S.error
          "database mismatch: index was built over %d graphs, this database \
           has %d — rebuild the index"
          stored_ng ng;
      match fp with
      | None -> ()
      | Some recompute ->
        let actual = recompute () in
        if stored_fp <> actual then
          S.error
            "database fingerprint mismatch (stored %08lx, actual %08lx): the \
             index was built for a different database — rebuild the index"
            stored_fp actual);
  let features =
    S.decode_section sections "pmi.features" (fun d ->
        S.get_array d Selection.decode_feature)
  in
  Array.iter
    (fun (f : Selection.feature) ->
      List.iter
        (fun gi ->
          if gi >= ng then
            S.error "feature support mentions graph %d of a %d-graph database"
              gi ng)
        f.support)
    features;
  (config, features)

let of_sections ?(salvage = false) ~db sections =
  let ng = Array.length db in
  let config, features =
    decode_small_sections ~ng
      ~fp:(Some (fun () -> Pgraph_io.db_fingerprint db))
      sections
  in
  let nf = Array.length features in
  let has name = List.exists (fun (s : S.section) -> s.S.name = name) sections in
  if
    has flat_dir_name
    || (salvage && (has flat_postings_name || has flat_bounds_name))
  then begin
    (* A flat image. Its three sections do not shard per column, so salvage
       is coarse: if any of them is damaged, every column is rebuilt with
       the same deterministic builder the sharded salvage uses. *)
    let entries, rebuilt =
      if has flat_dir_name && has flat_postings_name && has flat_bounds_name
      then (heap_of_flat_sections sections ~nf ~ng, 0)
      else if not salvage then
        (heap_of_flat_sections sections ~nf ~ng, 0 (* raises: missing section *))
      else begin
        let entries = Array.init nf (fun _ -> Array.make ng None) in
        for gi = 0 to ng - 1 do
          let col = build_column config db features gi in
          for fi = 0 to nf - 1 do
            entries.(fi).(gi) <- col.(fi)
          done
        done;
        (entries, ng)
      end
    in
    if rebuilt > 0 then begin
      Psst_obs.add m_salvaged rebuilt;
      Psst_obs.warn ~code:"store.salvaged"
        (Printf.sprintf
           "PMI salvage: rebuilt all %d columns (damaged flat image section)"
           rebuilt)
    end;
    let build_seconds =
      if salvage && not (has "pmi.meta") then 0.
      else S.decode_section sections "pmi.meta" S.get_f64
    in
    { config; features; backing = Heap entries; num_graphs = ng; build_seconds }
  end
  else begin
  let shard_w =
    S.decode_section sections "pmi.layout" (fun d ->
        let stored_nf = S.get_nat d in
        let stored_ng = S.get_nat d in
        let w = S.get_nat d in
        if stored_nf <> nf then
          S.error "entry layout has %d rows for %d features" stored_nf nf;
        if stored_ng <> ng then
          S.error "entry layout has %d columns for %d graphs" stored_ng ng;
        if w < 1 then S.error "entry layout shard width %d must be >= 1" w;
        w)
  in
  let entries = Array.init nf (fun _ -> Array.make ng None) in
  let nshards = if ng = 0 then 0 else ((ng - 1) / shard_w) + 1 in
  let rebuilt_shards = ref [] in
  let rebuilt_cols = ref 0 in
  for k = 0 to nshards - 1 do
    let name = shard_name k in
    let lo = k * shard_w and hi = min ng ((k + 1) * shard_w) in
    if has name then
      S.decode_section sections name (fun d ->
          for gi = lo to hi - 1 do
            for fi = 0 to nf - 1 do
              entries.(fi).(gi) <- S.get_option d decode_entry
            done
          done)
    else if not salvage then ignore (S.find_section sections name)
    else
      (* Self-healing (DESIGN.md §12): the shard's checksum failed (or the
         section never made it to disk) — recompute exactly its columns
         from the graphs and the intact feature section. *)
      begin
        for gi = lo to hi - 1 do
          let col = build_column config db features gi in
          for fi = 0 to nf - 1 do
            entries.(fi).(gi) <- col.(fi)
          done;
          incr rebuilt_cols
        done;
        rebuilt_shards := name :: !rebuilt_shards
      end
  done;
  if !rebuilt_cols > 0 then begin
    Psst_obs.add m_salvaged !rebuilt_cols;
    Psst_obs.warn ~code:"store.salvaged"
      (Printf.sprintf "PMI salvage: rebuilt %d columns (damaged shards: %s)"
         !rebuilt_cols
         (String.concat ", " (List.rev !rebuilt_shards)))
  end;
  let build_seconds =
    if salvage && not (has "pmi.meta") then 0.
    else S.decode_section sections "pmi.meta" S.get_f64
  in
  { config; features; backing = Heap entries; num_graphs = ng; build_seconds }
  end

let save path ~db t = S.write_file path ~kind:S.Pmi_index (to_sections ~db t)

let save_flat path ~db t =
  S.write_file path ~kind:S.Pmi_index
    (S.align_payloads ~targets:[ flat_bounds_name ] (flat_sections ~db t))

(* Zero-copy attach: the small sections are decoded (and CRC-checked)
   exactly like [of_sections]; the postings stay in the mapping after a
   full validating scan, so query-time binary searches never have to
   re-check structure. The bounds payload — the bulk of the image — is
   not scanned at open: its floats are read straight off the mapping and
   its count fields validated on materialisation ([flat_entry]), which is
   what keeps attach time independent of the index size. [fp] as in
   [decode_small_sections]. *)
let of_mapped_gen m ~ng ~fp =
  if not (S.mapped_has m flat_dir_name) then
    S.error
      "store %s holds no flat index image — re-index it with --flat to use \
       --mmap"
      (S.mapped_path m);
  let small =
    List.filter_map
      (fun name ->
        if S.mapped_has m name then
          Some { S.name; payload = S.mapped_section_string m name }
        else None)
      [ "pmi.config"; "pmi.db"; "pmi.features"; "pmi.meta"; flat_dir_name ]
  in
  let config, features = decode_small_sections ~ng ~fp small in
  let nf = Array.length features in
  let postings = S.mapped_bytes m flat_postings_name in
  let bounds = S.mapped_f64 m flat_bounds_name in
  let dir, filled, block =
    decode_flat_dir
      (S.find_section small flat_dir_name)
      ~nf ~ng
      ~postings_len:(Bigarray.Array1.dim postings)
      ~bounds_len:(8 * Bigarray.Array1.dim bounds)
  in
  scan_postings postings dir ~block ~ng (fun _ _ _ -> ());
  let build_seconds = S.decode_section small "pmi.meta" S.get_f64 in
  {
    config;
    features;
    backing =
      Flat
        {
          f_dir = dir;
          f_postings = postings;
          f_bounds = bounds;
          f_block = block;
          f_filled = filled;
        };
    num_graphs = ng;
    build_seconds;
  }

let of_mapped m ~db =
  of_mapped_gen m ~ng:(Array.length db)
    ~fp:(Some (fun () -> Pgraph_io.db_fingerprint db))

let of_mapped_lazy m ~ng = of_mapped_gen m ~ng ~fp:None

let load ?(salvage = false) ?(mmap = false) path ~db =
  let eager () =
    if salvage then
      of_sections ~salvage:true ~db
        (S.read_file_salvage path ~kind:S.Pmi_index).S.intact
    else of_sections ~db (S.read_file path ~kind:S.Pmi_index)
  in
  if not mmap then eager ()
  else
    match
      let m = S.map_file path ~kind:S.Pmi_index in
      Fun.protect
        ~finally:(fun () -> S.mapped_release m)
        (fun () -> of_mapped m ~db)
    with
    | t -> t
    | exception S.Store_error _ when salvage ->
      (* The mmap path has no partial salvage; fall back to the eager
         salvage loader, which rebuilds what the file cannot provide. *)
      eager ()

let pp_stats ppf t =
  Format.fprintf ppf "PMI: %d features x %d graphs, %d filled entries, built in %.2fs"
    (num_features t) (num_graphs t) (filled_entries t) t.build_seconds
