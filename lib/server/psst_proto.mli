(** Wire protocol of the resident query server (DESIGN.md §11).

    Every message travels in one length-prefixed, CRC-32-framed binary
    frame layered on the {!Psst_store} payload codecs:

    {v
    offset 0   magic        "PSSTRPC\x00"        8 bytes
           8   version      u32                  {!proto_version}
          12   type         u32                  message tag
          16   payload_len  u32                  <= {!max_payload}
          20   crc          u32                  CRC-32 of bytes 0..19 ++ payload
          24   payload      bytes                {!Psst_store} encoding
    v}

    Readers are defensive end to end: a bad magic, an unknown version or
    tag, an oversized or negative length, a checksum mismatch, a payload
    that does not decode, trailing payload bytes, or EOF in the middle of
    a frame all raise {!Proto_error} with a human-readable message — never
    [Failure], an out-of-bounds [Invalid_argument], or a hang (a corrupted
    length field is bounded by [max_payload], so a reader never waits for
    gigabytes that will not come). *)

exception Proto_error of string

val proto_version : int

(** 8-byte frame magic. *)
val magic : string

(** Size of the fixed frame header ([magic] through [crc]). *)
val header_bytes : int

(** Hard cap on [payload_len]; larger lengths are rejected before any
    allocation. *)
val max_payload : int

(** Where a server listens / a client connects. *)
type endpoint = Unix_socket of string | Tcp of string * int

val endpoint_to_string : endpoint -> string

(** Error taxonomy of {!reply.Error_reply}. [Queue_full] and [Shutdown]
    are retryable: the request was never admitted, so the client may
    resubmit (ideally elsewhere or after a backoff). *)
type error_code = Malformed | Queue_full | Deadline | Shutdown | Internal

val error_code_name : error_code -> string
val error_code_retryable : error_code -> bool

(** The pruning counters echoed with every answer, so a client can check
    bit-identity with an offline {!Query.run} without a second channel. *)
type query_stats = {
  relaxed_truncated : bool;
  structural_candidates : int;
  prob_candidates : int;
  accepted_by_bounds : int;
  pruned_by_bounds : int;
}

val stats_of_query : Query.stats -> query_stats

type request =
  | Ping
  | Run of { id : int; query : Lgraph.t; config : Query.config }
  | Run_topk of { id : int; query : Lgraph.t; k : int; config : Query.config }
  | Get_stats

type reply =
  | Pong
  | Answer of { id : int; answers : int list; stats : query_stats }
  | Topk_answer of { id : int; hits : (int * float) list }
  | Stats_json of string
  | Error_reply of { id : int; code : error_code; message : string }

(** [request_id r] — the client-chosen correlation id ([0] for [Ping] /
    [Get_stats], which are answered in order on the connection). *)
val request_id : request -> int

(** Full frame bytes (header + payload) for one message. *)
val encode_request : request -> string

val encode_reply : reply -> string

(** Decode one complete frame from a string (fuzz tests and tooling);
    {!Proto_error} on any anomaly, including trailing bytes after the
    frame. *)
val request_of_string : string -> request

val reply_of_string : string -> reply

(** Blocking frame readers. [End_of_file] is raised only at a clean frame
    boundary (zero bytes of the next frame read); EOF anywhere inside a
    frame is a truncation and raises {!Proto_error}. *)
val read_request : in_channel -> request

val read_reply : in_channel -> reply
