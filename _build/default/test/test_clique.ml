module Prng = Psst_util.Prng

let pentagon_weights = [| 3.; 1.; 4.; 1.; 5. |]

let test_make_validation () =
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "self loop" true
    (bad (fun () -> Mwc.make ~weights:[| 1. |] ~edges:[ (0, 0) ]));
  Alcotest.(check bool) "oob" true
    (bad (fun () -> Mwc.make ~weights:[| 1. |] ~edges:[ (0, 1) ]));
  Alcotest.(check bool) "negative weight" true
    (bad (fun () -> Mwc.make ~weights:[| -1. |] ~edges:[]))

let test_empty_graph () =
  let g = Mwc.make ~weights:[||] ~edges:[] in
  let c, w = Mwc.max_weight_clique g in
  Alcotest.(check (list int)) "empty clique" [] c;
  Tgen.check_close "zero weight" 0. w

let test_no_edges () =
  (* Independent set: best clique is the single heaviest vertex. *)
  let g = Mwc.make ~weights:pentagon_weights ~edges:[] in
  let c, w = Mwc.max_weight_clique g in
  Alcotest.(check (list int)) "heaviest singleton" [ 4 ] c;
  Tgen.check_close "weight 5" 5. w

let test_triangle_plus_pendant () =
  (* Triangle {0,1,2} with weights 1,1,1 and a pendant vertex 3 with
     weight 1.5 attached to 0: the triangle (weight 3) beats {0,3} (2.5). *)
  let g =
    Mwc.make ~weights:[| 1.; 1.; 1.; 1.5 |]
      ~edges:[ (0, 1); (1, 2); (0, 2); (0, 3) ]
  in
  let c, w = Mwc.max_weight_clique g in
  Alcotest.(check (list int)) "triangle" [ 0; 1; 2 ] c;
  Tgen.check_close "weight 3" 3. w

let test_heavy_pair_beats_triangle () =
  let g =
    Mwc.make ~weights:[| 1.; 1.; 1.; 5.; 5. |]
      ~edges:[ (0, 1); (1, 2); (0, 2); (3, 4) ]
  in
  let c, w = Mwc.max_weight_clique g in
  Alcotest.(check (list int)) "heavy pair" [ 3; 4 ] c;
  Tgen.check_close "weight 10" 10. w

let test_is_clique () =
  let g = Mwc.make ~weights:[| 1.; 1.; 1. |] ~edges:[ (0, 1); (1, 2) ] in
  Alcotest.(check bool) "path not clique" false (Mwc.is_clique g [ 0; 1; 2 ]);
  Alcotest.(check bool) "edge is clique" true (Mwc.is_clique g [ 0; 1 ]);
  Alcotest.(check bool) "empty is clique" true (Mwc.is_clique g [])

(* Brute force over all subsets. *)
let brute_max_clique weights edges =
  let n = Array.length weights in
  let adj = Array.make_matrix n n false in
  List.iter
    (fun (u, v) ->
      adj.(u).(v) <- true;
      adj.(v).(u) <- true)
    edges;
  let best = ref 0. in
  for mask = 0 to (1 lsl n) - 1 do
    let vs = List.filter (fun i -> mask land (1 lsl i) <> 0) (List.init n (fun i -> i)) in
    let clique =
      List.for_all
        (fun u -> List.for_all (fun v -> u = v || adj.(u).(v)) vs)
        vs
    in
    if clique then begin
      let w = List.fold_left (fun acc v -> acc +. weights.(v)) 0. vs in
      if w > !best then best := w
    end
  done;
  !best

let prop_mwc_matches_bruteforce =
  QCheck.Test.make ~name:"max weight clique = brute force" ~count:100
    QCheck.small_int
    (fun seed ->
      let rng = Prng.make (seed + 5) in
      let n = 2 + Prng.int rng 8 in
      let weights = Array.init n (fun _ -> Prng.float rng 3.0) in
      let edges = ref [] in
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          if Prng.bernoulli rng 0.4 then edges := (u, v) :: !edges
        done
      done;
      let _, w = Mwc.max_weight_clique (Mwc.make ~weights ~edges:!edges) in
      Tgen.close ~eps:1e-9 w (brute_max_clique weights !edges))

let prop_greedy_is_valid_clique =
  QCheck.Test.make ~name:"greedy returns a valid clique" ~count:100 QCheck.small_int
    (fun seed ->
      let rng = Prng.make (seed + 11) in
      let n = 2 + Prng.int rng 10 in
      let weights = Array.init n (fun _ -> Prng.float rng 3.0) in
      let edges = ref [] in
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          if Prng.bernoulli rng 0.5 then edges := (u, v) :: !edges
        done
      done;
      let g = Mwc.make ~weights ~edges:!edges in
      let c, _ = Mwc.greedy_clique g in
      Mwc.is_clique g c)

let prop_exact_at_least_greedy =
  QCheck.Test.make ~name:"exact >= greedy" ~count:100 QCheck.small_int
    (fun seed ->
      let rng = Prng.make (seed + 17) in
      let n = 2 + Prng.int rng 9 in
      let weights = Array.init n (fun _ -> Prng.float rng 3.0) in
      let edges = ref [] in
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          if Prng.bernoulli rng 0.5 then edges := (u, v) :: !edges
        done
      done;
      let g = Mwc.make ~weights ~edges:!edges in
      let _, wg = Mwc.greedy_clique g in
      let _, we = Mwc.max_weight_clique g in
      we >= wg -. 1e-9)

let suite =
  [
    Alcotest.test_case "make validation" `Quick test_make_validation;
    Alcotest.test_case "empty graph" `Quick test_empty_graph;
    Alcotest.test_case "no edges" `Quick test_no_edges;
    Alcotest.test_case "triangle vs pendant" `Quick test_triangle_plus_pendant;
    Alcotest.test_case "heavy pair wins" `Quick test_heavy_pair_beats_triangle;
    Alcotest.test_case "is_clique" `Quick test_is_clique;
    QCheck_alcotest.to_alcotest prop_mwc_matches_bruteforce;
    QCheck_alcotest.to_alcotest prop_greedy_is_valid_clique;
    QCheck_alcotest.to_alcotest prop_exact_at_least_greedy;
  ]
