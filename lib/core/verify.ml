module Bitset = Psst_util.Bitset
module Prng = Psst_util.Prng

type config = { tau : float; xi : float; emb_cap : int }

let default_config = { tau = 0.1; xi = 0.05; emb_cap = 64 }

let num_samples c =
  int_of_float (ceil (4. *. log (2. /. c.xi) /. (c.tau *. c.tau)))

let minimal_antichain sets =
  let sorted =
    List.sort (fun a b -> compare (Bitset.cardinal a) (Bitset.cardinal b)) sets
  in
  List.fold_left
    (fun kept s ->
      if List.exists (fun k -> Bitset.subset k s) kept then kept else s :: kept)
    [] sorted
  |> List.rev

let embedding_sets ?(config = default_config) g relaxed =
  let gc = Pgraph.skeleton g in
  let m = Lgraph.num_edges gc in
  let seen = Hashtbl.create 64 in
  let sets = ref [] in
  List.iter
    (fun rq ->
      if Lgraph.num_edges rq = 0 then begin
        (* Empty relaxation: matches every world. *)
        let empty = Bitset.create m in
        let key = Bitset.elements empty in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.replace seen key ();
          sets := empty :: !sets
        end
      end
      else
        List.iter
          (fun e ->
            let key = Bitset.elements e.Embedding.edges in
            if not (Hashtbl.mem seen key) then begin
              Hashtbl.replace seen key ();
              sets := e.Embedding.edges :: !sets
            end)
          (Vf2.distinct_embeddings ~cap:config.emb_cap rq gc))
    relaxed;
  minimal_antichain !sets

let m_exact_calls = Psst_obs.counter "verify.exact_calls"
let m_smp_calls = Psst_obs.counter "verify.smp_calls"
let m_smp_samples = Psst_obs.counter "verify.smp_samples"

(* Chaos site inside the Karp–Luby sampling loop (DESIGN.md §12): a Fail
   plan aborts the candidate's verification with Psst_fault.Injected —
   which Query.run catches and degrades to a bounds answer — and a Delay
   plan slows sampling down enough to trip verification budgets. *)
let fault_sample = Psst_fault.site "verify.sample"

(* Per-call estimator variance v^2 * p(1-p)/n of the Karp-Luby mean;
   the registry mean over a workload is the Fig 10-style noise figure. *)
let a_smp_variance = Psst_obs.accumulator "verify.smp_variance"

let exact ?(config = default_config) g relaxed =
  Psst_obs.incr m_exact_calls;
  match embedding_sets ~config g relaxed with
  | [] -> 0.
  | sets -> Exact.prob_any_present g sets

let exact_naive ?(config = default_config) g relaxed =
  (* No early return on an empty embedding set: the index-free competitor
     pays the full world enumeration either way. *)
  Exact.prob_any_present_naive g (embedding_sets ~config g relaxed)

let smp ?(config = default_config) rng g relaxed =
  Psst_obs.incr m_smp_calls;
  let sets = embedding_sets ~config g relaxed in
  match sets with
  | [] -> 0.
  | _ ->
    let certain = Bitset.of_list (Lgraph.num_edges (Pgraph.skeleton g))
        (Pgraph.certain_edges g)
    in
    (* Work over uncertain edges only; a set with none is always present. *)
    let usets = List.map (fun s -> Bitset.diff s certain) sets in
    if List.exists Bitset.is_empty usets then 1.
    else begin
      let usets = Array.of_list (minimal_antichain usets) in
      let jt = Pgraph.jtree g in
      let probs =
        Array.map
          (fun s ->
            Jtree.evidence_prob jt
              (List.map (fun e -> (e, true)) (Bitset.elements s)))
          usets
      in
      let v = Array.fold_left ( +. ) 0. probs in
      if v <= 0. then 0.
      else begin
        let n = num_samples config in
        let cnt = ref 0 in
        for _ = 1 to n do
          Psst_fault.inject fault_sample;
          let i = Prng.categorical rng probs in
          let evidence =
            List.map (fun e -> (e, true)) (Bitset.elements usets.(i))
          in
          match Jtree.sample_posterior rng jt ~evidence with
          | None -> () (* zero-probability event: never drawn in theory *)
          | Some (lookup, _) ->
            let earlier_fires =
              let rec go j =
                j < i
                && (Bitset.fold (fun e acc -> acc && lookup e) usets.(j) true
                   || go (j + 1))
              in
              go 0
            in
            if not earlier_fires then incr cnt
        done;
        Psst_obs.add m_smp_samples n;
        (let p_hat = float_of_int !cnt /. float_of_int n in
         Psst_obs.record a_smp_variance
           (v *. v *. p_hat *. (1. -. p_hat) /. float_of_int n));
        Float.min 1. (v *. float_of_int !cnt /. float_of_int n)
      end
    end
