module Proto = Psst_proto

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect endpoint =
  (match Sys.os_type with
  | "Unix" -> Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  | _ -> ());
  let fd, addr =
    match endpoint with
    | Proto.Unix_socket path ->
      (Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0, Unix.ADDR_UNIX path)
    | Proto.Tcp (host, port) ->
      let inet =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          try (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with Not_found -> failwith (host ^ ": unknown host"))
      in
      (Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0, Unix.ADDR_INET (inet, port))
  in
  (try Unix.connect fd addr
   with e ->
     (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
     raise e);
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let close c =
  (try flush c.oc with Sys_error _ -> ());
  try Unix.close c.fd with Unix.Unix_error (_, _, _) -> ()

let send_raw c bytes =
  output_string c.oc bytes;
  flush c.oc

let send c req = send_raw c (Proto.encode_request req)
let read_reply c = Proto.read_reply c.ic
let half_close c = Unix.shutdown c.fd Unix.SHUTDOWN_SEND

let rpc c req =
  send c req;
  read_reply c

let ping c =
  match rpc c Proto.Ping with
  | Proto.Pong -> ()
  | _ -> failwith "ping: unexpected reply"

let stats_json c =
  match rpc c Proto.Get_stats with
  | Proto.Stats_json j -> j
  | _ -> failwith "stats: unexpected reply"

let run_all c queries config =
  let n = List.length queries in
  List.iteri
    (fun id query -> send c (Proto.Run { id; query; config }))
    queries;
  let out = Array.make n None in
  for _ = 1 to n do
    let reply = read_reply c in
    let id =
      match reply with
      | Proto.Answer { id; _ } | Proto.Error_reply { id; _ } -> id
      | Proto.Pong | Proto.Topk_answer _ | Proto.Stats_json _ ->
        failwith "run_all: unexpected reply kind"
    in
    if id < 0 || id >= n then failwith "run_all: reply id out of range";
    if out.(id) <> None then failwith "run_all: duplicate reply id";
    out.(id) <- Some reply
  done;
  Array.map
    (function Some r -> r | None -> failwith "run_all: missing reply")
    out
