lib/optim/rounding.mli: Psst_util Qp
