(* Resident query server (DESIGN.md §11, §16).

   Thread roles:
     - accept thread: accepts sockets, spawns one reader per connection;
     - reader threads: parse frames, answer Ping/Get_stats/Set_tenant
       inline, admit Run/Run_topk into the bounded per-tenant queues (or
       reject with a retryable error when the queue / tenant quota is
       full or the server is stopping), and hand Add_graphs batches to
       the ingest writer;
     - batcher thread: owns the domain pool; pops micro-batches
       round-robin across tenants, enforces queue-wait deadlines,
       executes with Query.run_batch_on, writes replies;
     - ingest writer (Psst_ingest, when enabled): the single mutator of
       the served database — applies Add_graphs batches, persists them
       as delta files, and publishes each new epoch with one atomic
       swap.

   Snapshot consistency: the live database is an epoch-numbered
   immutable snapshot behind an Atomic. Readers capture the snapshot at
   admission time and the batcher groups jobs by (epoch, config), so a
   query admitted before an ingest batch never observes the new graphs
   and every answer is bit-identical to an offline Query.run against
   that epoch's database.

   The queue mutex orders admission against the drain: once [stopping] is
   set under the mutex, no new job can enter, so the batcher's "stopping
   and empty" exit condition is a true drain barrier — every admitted
   request is answered before stop() returns. *)

module Proto = Psst_proto
module Pool = Psst_util.Pool

(* --- metrics (bound once; see Psst_obs interning rules) --- *)

let m_conns = Psst_obs.counter "server.conns"
let m_requests = Psst_obs.counter "server.requests"
let m_served = Psst_obs.counter "server.served"
let m_reject_full = Psst_obs.counter "server.reject.queue_full"
let m_reject_quota = Psst_obs.counter "server.reject.tenant_quota"
let m_reject_deadline = Psst_obs.counter "server.reject.deadline"
let m_reject_shutdown = Psst_obs.counter "server.reject.shutdown"
let m_proto_errors = Psst_obs.counter "server.proto.errors"
let m_write_errors = Psst_obs.counter "server.write.errors"
let m_degraded = Psst_obs.counter "server.degraded"
let m_retries = Psst_obs.counter "server.retries"
let m_flat_index = Psst_obs.counter "server.db.flat_index"
let m_batch_size = Psst_obs.histogram ~lo:1. ~hi:1e4 "server.batch.size"
let m_queue_depth = Psst_obs.histogram ~lo:1. ~hi:1e6 "server.queue.depth"
let m_queue_wait = Psst_obs.histogram "server.queue.wait_s"
let m_latency = Psst_obs.histogram "server.latency_s"

(* Per-tenant counters are interned on first use — [Psst_obs.counter]
   returns the existing counter for a repeated name, so dynamic tenant
   names are safe (one registry row per tenant per verb). *)
let tenant_counter tenant verb =
  Psst_obs.counter (Printf.sprintf "server.tenant.%s.%s" tenant verb)

type config = {
  endpoint : Proto.endpoint;
  domains : int;
  queue_cap : int;
  deadline_ms : float;
  verify_budget_ms : float;
  batch_max : int;
  trace_cap : int;
  cache_cap : int;
  ingest_queue_cap : int;
  tenant_quota : int;
  writable : bool;
      (* false = standby: Add_graphs is rejected with a retryable error
         (the replication stream is the only mutator) until promotion
         flips it with [set_writable]. *)
}

let default_config endpoint =
  {
    endpoint;
    domains = 1;
    queue_cap = 128;
    deadline_ms = 0.;
    verify_budget_ms = 0.;
    batch_max = 32;
    trace_cap = 256;
    cache_cap = 16384;
    ingest_queue_cap = 1024;
    tenant_quota = 0;
    writable = true;
  }

(* The replication seam (DESIGN.md §17), implemented by Psst_replica and
   injected here so the server stays below it in the library graph. *)
type subscription = { sub_ack : seq:int -> unit; sub_close : unit -> unit }

type publisher = {
  pub_publish : Psst_ingest.publish;
  pub_subscribe :
    from_seq:int ->
    send:(Psst_proto.reply -> bool) ->
    (subscription, string) Result.t;
}

let default_tenant = "default"

(* Chaos site around batch execution (DESIGN.md §12): a Fail plan here
   stands in for the verification stage dying (pool wedged, OOM-killed
   helper, ...) and exercises the bounds-only degradation path. *)
let fault_batch = Psst_fault.site "server.batch"

type conn = {
  fd : Unix.file_descr;
  wmutex : Mutex.t;  (* serialises reply writes and the close *)
  mutable open_ : bool;
  mutable tenant : string;  (* set by Set_tenant; reader thread only *)
}

type job = {
  jconn : conn;
  jid : int;
  jver : int;  (* protocol version of the request frame; replies mirror it *)
  jtenant : string;
  jsnap : Psst_ingest.snapshot;  (* the epoch captured at admission *)
  jkind :
    [ `Run of Lgraph.t * Query.config | `Topk of Lgraph.t * int * Query.config ];
  enqueued : float;
}

type t = {
  cfg : config;
  db_ref : Psst_ingest.snapshot Atomic.t;
  ingest : Psst_ingest.t option;  (* None when ingest_queue_cap = 0 *)
  publisher : publisher option;
  mutable writable : bool;  (* flipped (once) by promotion *)
  pool : Pool.t;
  cache : Qcache.t option;
      (* cross-query verification cache, shared by every batch on the
         persistent pool; None when [cache_cap = 0]. Scoped by physical
         database identity, so an epoch swap flushes it automatically. *)
  listen_fd : Unix.file_descr;
  bound : Proto.endpoint;  (* endpoint with the actual port resolved *)
  mutex : Mutex.t;
  cond : Condition.t;
  (* Per-tenant FIFO queues with a round-robin rota: a tenant is in
     [tenant_rota] exactly when its queue is non-empty, and the batcher
     takes one job per rota turn, so a tenant saturating its quota gets
     an equal share of batch slots, never the whole batch. All three
     fields are guarded by [mutex]. *)
  tqueues : (string, job Queue.t) Hashtbl.t;
  mutable tenant_rota : string list;
  mutable queued_total : int;
  mutable stopping : bool;
  mutable is_stopped : bool;
  mutable conns : conn list;
  mutable readers : Thread.t list;
  mutable accept_thread : Thread.t option;
  mutable batch_thread : Thread.t option;
  trace_ring : Psst_obs.Trace.t Queue.t;  (* guarded by [mutex] *)
  served_count : int Atomic.t;
  degraded_count : int Atomic.t;
  retry_count : int Atomic.t;  (* retryable error replies sent *)
  start_time : float;
}

let endpoint t = t.bound
let stopped t = t.is_stopped
let served t = Atomic.get t.served_count
let database t = (Atomic.get t.db_ref).Psst_ingest.db
let epoch t = (Atomic.get t.db_ref).Psst_ingest.epoch
let snapshot_ref t = t.db_ref
let writable t = t.writable
let set_writable t w = t.writable <- w

let traces t =
  Mutex.lock t.mutex;
  let l = List.of_seq (Queue.to_seq t.trace_ring) in
  Mutex.unlock t.mutex;
  l

let push_trace t tr =
  Mutex.lock t.mutex;
  Queue.add tr t.trace_ring;
  while Queue.length t.trace_ring > t.cfg.trace_cap do
    ignore (Queue.pop t.trace_ring)
  done;
  Mutex.unlock t.mutex

(* --- connection plumbing --- *)

let close_conn t c =
  Mutex.lock c.wmutex;
  let was_open = c.open_ in
  if was_open then begin
    c.open_ <- false;
    (* shutdown() wakes a reader blocked in read(2) on this socket —
       close() alone does not — so stop() can join every reader thread. *)
    (try Unix.shutdown c.fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error (_, _, _) -> ());
    (try Unix.close c.fd with Unix.Unix_error (_, _, _) -> ())
  end;
  Mutex.unlock c.wmutex;
  if was_open then begin
    Mutex.lock t.mutex;
    t.conns <- List.filter (fun c' -> c' != c) t.conns;
    Mutex.unlock t.mutex
  end

(* [true] iff the frame left the socket — the replication hub needs the
   verdict to drop a dead subscriber; everyone else ignores it. *)
let send_reply_checked c ~version reply =
  Mutex.lock c.wmutex;
  let ok =
    if not c.open_ then false
    else
      match Proto.write_frame_fd c.fd (Proto.encode_reply ~version reply) with
      | () ->
        Psst_obs.incr m_served;
        true
      | exception (Sys_error _ | Unix.Unix_error (_, _, _)) ->
        (* The client hung up mid-reply: normal under load, not a warning. *)
        Psst_obs.incr m_write_errors;
        false
      | exception Psst_fault.Injected _ ->
        (* Injected dead link on proto.write: same accounting as a hang-up;
           the reader side of this connection fails next and closes it. *)
        Psst_obs.incr m_write_errors;
        false
  in
  Mutex.unlock c.wmutex;
  ok

let send_reply c ~version reply = ignore (send_reply_checked c ~version reply)

let send_counted t c ~version reply =
  Atomic.incr t.served_count;
  (match reply with
  | Proto.Answer { stats; _ } when stats.Proto.degraded ->
    Atomic.incr t.degraded_count;
    Psst_obs.incr m_degraded
  | Proto.Error_reply { code; _ } when Proto.error_code_retryable code ->
    Atomic.incr t.retry_count;
    Psst_obs.incr m_retries
  | _ -> ());
  send_reply c ~version reply

(* --- admission --- *)

let tenant_queue t tenant =
  match Hashtbl.find_opt t.tqueues tenant with
  | Some q -> q
  | None ->
    let q = Queue.create () in
    Hashtbl.add t.tqueues tenant q;
    q

let admit t job =
  Mutex.lock t.mutex;
  let verdict =
    if t.stopping then `Shutdown
    else begin
      let q = tenant_queue t job.jtenant in
      if t.cfg.tenant_quota > 0 && Queue.length q >= t.cfg.tenant_quota then
        `Quota
      else if t.queued_total >= t.cfg.queue_cap then `Full
      else begin
        if Queue.is_empty q then
          t.tenant_rota <- t.tenant_rota @ [ job.jtenant ];
        Queue.add job q;
        t.queued_total <- t.queued_total + 1;
        Psst_obs.observe m_queue_depth (float_of_int t.queued_total);
        Condition.signal t.cond;
        `Admitted
      end
    end
  in
  Mutex.unlock t.mutex;
  match verdict with
  | `Admitted -> Psst_obs.incr (tenant_counter job.jtenant "admitted")
  | `Full ->
    Psst_obs.incr m_reject_full;
    Psst_obs.incr (tenant_counter job.jtenant "rejected");
    send_counted t job.jconn ~version:job.jver
      (Proto.Error_reply
         {
           id = job.jid;
           code = Proto.Queue_full;
           message =
             Printf.sprintf "admission queue full (%d requests); retry later"
               t.cfg.queue_cap;
         })
  | `Quota ->
    Psst_obs.incr m_reject_quota;
    Psst_obs.incr (tenant_counter job.jtenant "rejected");
    send_counted t job.jconn ~version:job.jver
      (Proto.Error_reply
         {
           id = job.jid;
           code = Proto.Queue_full;
           message =
             Printf.sprintf
               "tenant %S is at its quota (%d queued requests); retry later"
               job.jtenant t.cfg.tenant_quota;
         })
  | `Shutdown ->
    Psst_obs.incr m_reject_shutdown;
    send_counted t job.jconn ~version:job.jver
      (Proto.Error_reply
         {
           id = job.jid;
           code = Proto.Shutdown;
           message = "server is shutting down; retry elsewhere";
         })

let health_snapshot t =
  Mutex.lock t.mutex;
  let depth = t.queued_total in
  Mutex.unlock t.mutex;
  let snap = Atomic.get t.db_ref in
  {
    Proto.uptime_s = Unix.gettimeofday () -. t.start_time;
    queue_depth = depth;
    served = Atomic.get t.served_count;
    degraded_answers = Atomic.get t.degraded_count;
    retryable_rejections = Atomic.get t.retry_count;
    workers = [];
    epoch = snap.Psst_ingest.epoch;
    ingest_queued =
      (match t.ingest with
      | Some ing -> Psst_ingest.queued_graphs ing
      | None -> 0);
    ingest_applied =
      (match t.ingest with
      | Some ing -> Psst_ingest.applied_graphs ing
      | None -> 0);
  }

let health = health_snapshot

(* Hand one Add_graphs batch to the ingest writer. The ack runs on the
   writer thread after the epoch swap (or the failed persist), so an
   Ingest_ack in hand means every later query on any connection sees the
   new graphs. *)
let handle_add_graphs t c ~version ~id ~token graphs =
  let tenant = c.tenant in
  let reject code message =
    Psst_obs.incr (tenant_counter tenant "rejected");
    (match code with
    | Proto.Queue_full -> Psst_obs.incr m_reject_full
    | Proto.Shutdown -> Psst_obs.incr m_reject_shutdown
    | _ -> ());
    send_counted t c ~version (Proto.Error_reply { id; code; message })
  in
  if not t.writable then
    reject Proto.Unavailable
      "this server is a read-only standby; send writes to the primary"
  else
  match t.ingest with
  | None ->
    reject Proto.Unavailable
      "ingest is disabled on this server (--ingest-queue-cap 0)"
  | Some ing -> (
    let ack = function
      | Ok (r : Psst_ingest.result) ->
        Psst_obs.incr (tenant_counter tenant "ingested");
        send_counted t c ~version
          (Proto.Ingest_ack
             { id; epoch = r.epoch; base = r.base; count = r.count })
      | Error msg ->
        (* Persist or apply failed; nothing was published, so the batch
           is safely retryable. *)
        reject Proto.Unavailable msg
    in
    match Psst_ingest.submit ~token ing ~tenant graphs ~ack with
    | `Queued -> ()
    | `Full ->
      reject Proto.Queue_full
        (Printf.sprintf "ingest queue full (%d graphs); retry later"
           t.cfg.ingest_queue_cap)
    | `Quota ->
      reject Proto.Queue_full
        (Printf.sprintf
           "tenant %S is at its ingest quota (%d queued graphs); retry later"
           tenant t.cfg.tenant_quota)
    | `Stopped ->
      reject Proto.Shutdown "server is shutting down; retry elsewhere")

let reader_loop t c =
  (* This connection's replication subscription, if Subscribe turned it
     into a stream: acks from the peer land here, and the subscription
     is torn down with the connection however the reader exits. *)
  let sub : subscription option ref = ref None in
  let rec loop () =
    match Proto.read_request_fd c.fd with
    | exception End_of_file -> close_conn t c
    | exception (Sys_error _ | Unix.Unix_error (_, _, _)) -> close_conn t c
    | exception Psst_fault.Injected _ ->
      (* Injected dead link on proto.read: drop the connection cleanly,
         exactly as a real half-open socket would resolve. *)
      close_conn t c
    | exception Proto.Proto_error msg ->
      (* One error reply, one warning event, then drop the connection:
         after a framing error the byte stream has no trustworthy frame
         boundary left. The peer's version is unknowable at this point, so
         the reply is framed at min_proto_version — decodable by all. *)
      Psst_obs.incr m_proto_errors;
      Psst_obs.warn ~code:"proto" msg;
      send_counted t c ~version:Proto.min_proto_version
        (Proto.Error_reply { id = 0; code = Proto.Malformed; message = msg });
      close_conn t c
    | version, req -> (
      match req with
      | Proto.Ping ->
        Psst_obs.incr m_requests;
        send_counted t c ~version Proto.Pong;
        loop ()
      | Proto.Get_stats ->
        Psst_obs.incr m_requests;
        send_counted t c ~version
          (Proto.Stats_json (Psst_obs.to_json_string ()));
        loop ()
      | Proto.Get_health ->
        Psst_obs.incr m_requests;
        send_counted t c ~version (Proto.Health_reply (health_snapshot t));
        loop ()
      | Proto.Set_tenant name ->
        Psst_obs.incr m_requests;
        c.tenant <- name;
        send_counted t c ~version Proto.Pong;
        loop ()
      | Proto.Add_graphs { id; token; graphs } ->
        Psst_obs.incr m_requests;
        handle_add_graphs t c ~version ~id ~token graphs;
        loop ()
      | Proto.Subscribe { from_seq } ->
        Psst_obs.incr m_requests;
        (match t.publisher with
        | None ->
          send_counted t c ~version
            (Proto.Error_reply
               {
                 id = 0;
                 code = Proto.Unavailable;
                 message =
                   "this server does not accept replication subscriptions \
                    (no persistent delta chain)";
               })
        | Some _ when !sub <> None ->
          send_counted t c ~version
            (Proto.Error_reply
               {
                 id = 0;
                 code = Proto.Malformed;
                 message = "connection is already subscribed";
               })
        | Some p -> (
          match
            p.pub_subscribe ~from_seq
              ~send:(fun reply -> send_reply_checked c ~version reply)
          with
          | Ok s -> sub := Some s
          | Error msg ->
            send_counted t c ~version
              (Proto.Error_reply
                 { id = 0; code = Proto.Unavailable; message = msg })));
        loop ()
      | Proto.Replica_ack { seq } ->
        (* One-way: the stream carries Delta_frames the other direction,
           so acks are never answered. An ack outside a subscription is
           simply ignored. *)
        Psst_obs.incr m_requests;
        Option.iter (fun s -> s.sub_ack ~seq) !sub;
        loop ()
      | Proto.Run { id; query; config } ->
        Psst_obs.incr m_requests;
        admit t
          {
            jconn = c;
            jid = id;
            jver = version;
            jtenant = c.tenant;
            jsnap = Atomic.get t.db_ref;
            jkind = `Run (query, config);
            enqueued = Unix.gettimeofday ();
          };
        loop ()
      | Proto.Run_topk { id; query; k; config } ->
        Psst_obs.incr m_requests;
        admit t
          {
            jconn = c;
            jid = id;
            jver = version;
            jtenant = c.tenant;
            jsnap = Atomic.get t.db_ref;
            jkind = `Topk (query, k, config);
            enqueued = Unix.gettimeofday ();
          };
        loop ())
  in
  Fun.protect
    ~finally:(fun () -> Option.iter (fun s -> s.sub_close ()) !sub)
    loop

let accept_loop t =
  let rec loop () =
    match Unix.accept t.listen_fd with
    | fd, _addr when t.stopping ->
      (* stop()'s wake-up connection (or a raced late client): admission
         is closed, drop it. *)
      (try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
    | fd, _addr ->
      let c =
        { fd; wmutex = Mutex.create (); open_ = true; tenant = default_tenant }
      in
      Psst_obs.incr m_conns;
      let th =
        Thread.create
          (fun () ->
            try reader_loop t c
            with e ->
              Psst_obs.warn ~code:"server.reader" (Printexc.to_string e);
              close_conn t c)
          ()
      in
      Mutex.lock t.mutex;
      t.conns <- c :: t.conns;
      t.readers <- th :: t.readers;
      Mutex.unlock t.mutex;
      loop ()
    | exception Unix.Unix_error (e, _, _) ->
      if t.stopping then ()
      else if e = Unix.ECONNABORTED || e = Unix.EINTR then loop ()
      else begin
        (* Transient accept failure (e.g. EMFILE): report, back off, keep
           serving the connections we already have. *)
        Psst_obs.warn ~code:"server.accept" (Unix.error_message e);
        Thread.delay 0.05;
        if t.stopping then () else loop ()
      end
  in
  loop ()

(* --- batching --- *)

let job_error t job code message =
  (match code with
  | Proto.Deadline -> Psst_obs.incr m_reject_deadline
  | _ -> ());
  send_counted t job.jconn ~version:job.jver
    (Proto.Error_reply { id = job.jid; code; message })

let finish_run t job (out : Query.outcome) =
  push_trace t out.trace;
  Psst_obs.incr (tenant_counter job.jtenant "served");
  send_counted t job.jconn ~version:job.jver
    (Proto.Answer
       {
         id = job.jid;
         answers = out.answers;
         stats = Proto.stats_of_query out.stats;
       });
  Psst_obs.observe m_latency (Unix.gettimeofday () -. job.enqueued)

let process_batch t batch =
  let now = Unix.gettimeofday () in
  Psst_obs.observe m_batch_size (float_of_int (List.length batch));
  List.iter
    (fun j -> Psst_obs.observe m_queue_wait (now -. j.enqueued))
    batch;
  let live, expired =
    if t.cfg.deadline_ms <= 0. then (batch, [])
    else
      List.partition
        (fun j -> (now -. j.enqueued) *. 1000. <= t.cfg.deadline_ms)
        batch
  in
  List.iter
    (fun j ->
      job_error t j Proto.Deadline
        (Printf.sprintf "deadline exceeded: waited %.1f ms in queue (limit %.1f)"
           ((now -. j.enqueued) *. 1000.)
           t.cfg.deadline_ms))
    expired;
  let runs, topks =
    List.partition_map
      (fun j ->
        match j.jkind with
        | `Run (q, cfg) -> Either.Left (j, q, cfg)
        | `Topk (q, k, cfg) -> Either.Right (j, q, k, cfg))
      live
  in
  (* Group Run jobs by (epoch, config) so each group is one
     Query.run_batch_on call on the shared pool against the snapshot its
     jobs were admitted under; answers stay bit-identical to offline
     runs on that epoch's database, whatever ingest published since. *)
  let groups =
    List.fold_left
      (fun acc (j, q, cfg) ->
        let key = (j.jsnap.Psst_ingest.epoch, cfg) in
        match List.assoc_opt key acc with
        | Some cell ->
          cell := (j, q) :: !cell;
          acc
        | None -> (key, ref [ (j, q) ]) :: acc)
      [] runs
    |> List.rev_map (fun (key, cell) -> (key, List.rev !cell))
  in
  let budget_ms =
    if t.cfg.verify_budget_ms > 0. then Some t.cfg.verify_budget_ms else None
  in
  List.iter
    (fun ((_, cfg), jobs) ->
      let db = (fst (List.hd jobs)).jsnap.Psst_ingest.db in
      match
        Psst_fault.inject fault_batch;
        Query.run_batch_on ?budget_ms ?cache:t.cache t.pool db
          (List.map snd jobs) cfg
      with
      | outs -> List.iter2 (fun (j, _) out -> finish_run t j out) jobs outs
      | exception Psst_fault.Injected _ ->
        (* Verification stage down: degrade the whole group to bounds-only
           answers (supersets of the exact sets, flagged degraded) instead
           of failing the requests — DESIGN.md §12. *)
        Psst_obs.warn ~code:"server.batch"
          "verification unavailable (injected fault): serving bounds-only \
           answers";
        List.iter
          (fun (j, q) ->
            match Query.run_bounds_only ?cache:t.cache db q cfg with
            | out -> finish_run t j out
            | exception e ->
              job_error t j Proto.Internal
                ("query failed: " ^ Printexc.to_string e))
          jobs
      | exception e ->
        let msg = Printexc.to_string e in
        Psst_obs.warn ~code:"server.batch" msg;
        List.iter
          (fun (j, _) -> job_error t j Proto.Internal ("query failed: " ^ msg))
          jobs)
    groups;
  List.iter
    (fun (j, q, k, cfg) ->
      let db = j.jsnap.Psst_ingest.db in
      match
        Psst_fault.inject fault_batch;
        Topk.run ?cache:t.cache db q ~k cfg
      with
      | out ->
        Psst_obs.incr (tenant_counter j.jtenant "served");
        send_counted t j.jconn ~version:j.jver
          (Proto.Topk_answer
             {
               id = j.jid;
               hits =
                 List.map (fun (h : Topk.hit) -> (h.graph, h.ssp)) out.Topk.hits;
             });
        Psst_obs.observe m_latency (Unix.gettimeofday () -. j.enqueued)
      | exception Psst_fault.Injected _ ->
        (* Top-k has no bounds-only fallback; answer with a clean retryable
           error rather than a wrong or missing reply. *)
        job_error t j Proto.Unavailable "top-k stage unavailable; retry"
      | exception e ->
        let msg = Printexc.to_string e in
        Psst_obs.warn ~code:"server.batch" msg;
        job_error t j Proto.Internal ("top-k failed: " ^ msg))
    topks

(* Pop up to [batch_max] jobs, one per tenant per rota turn (caller holds
   the mutex). A tenant leaves the rota when its queue empties and
   re-enters at the tail on its next admission, so no tenant is ever
   starved by another's backlog. *)
let pop_batch t =
  let batch = ref [] in
  let n = ref 0 in
  while !n < t.cfg.batch_max && t.queued_total > 0 do
    match t.tenant_rota with
    | [] ->
      (* Unreachable: queued_total > 0 implies a non-empty queue, and
         every non-empty queue's tenant is in the rota. *)
      t.queued_total <- 0
    | tenant :: rest -> (
      match Hashtbl.find_opt t.tqueues tenant with
      | None -> t.tenant_rota <- rest
      | Some q ->
        if Queue.is_empty q then t.tenant_rota <- rest
        else begin
          batch := Queue.pop q :: !batch;
          incr n;
          t.queued_total <- t.queued_total - 1;
          t.tenant_rota <-
            (if Queue.is_empty q then rest else rest @ [ tenant ])
        end)
  done;
  List.rev !batch

let batch_loop t =
  let rec loop () =
    Mutex.lock t.mutex;
    while t.queued_total = 0 && not t.stopping do
      Condition.wait t.cond t.mutex
    done;
    let batch = pop_batch t in
    Mutex.unlock t.mutex;
    if batch <> [] then begin
      process_batch t batch;
      loop ()
    end
    else if not t.stopping then loop ()
    (* else: stopping with an empty queue — drained, exit. *)
  in
  loop ()

(* --- lifecycle --- *)

let bind_endpoint = function
  | Proto.Unix_socket path ->
    (try Unix.unlink path with Unix.Unix_error (_, _, _) -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.bind fd (Unix.ADDR_UNIX path)
     with e -> Unix.close fd; raise e);
    Unix.listen fd 64;
    (fd, Proto.Unix_socket path)
  | Proto.Tcp (host, port) ->
    let addr =
      try Unix.inet_addr_of_string host
      with Failure _ -> (
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> failwith (host ^ ": unknown host"))
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt fd Unix.SO_REUSEADDR true;
       Unix.bind fd (Unix.ADDR_INET (addr, port))
     with e -> Unix.close fd; raise e);
    Unix.listen fd 64;
    let actual =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> port
    in
    (fd, Proto.Tcp (host, actual))

let start ?chain ?publisher cfg db =
  if cfg.queue_cap < 1 then invalid_arg "Psst_server: queue_cap must be >= 1";
  if cfg.batch_max < 1 then invalid_arg "Psst_server: batch_max must be >= 1";
  if cfg.cache_cap < 0 then invalid_arg "Psst_server: cache_cap must be >= 0";
  if cfg.ingest_queue_cap < 0 then
    invalid_arg "Psst_server: ingest_queue_cap must be >= 0";
  if cfg.tenant_quota < 0 then
    invalid_arg "Psst_server: tenant_quota must be >= 0";
  (match Sys.os_type with
  | "Unix" -> Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  | _ -> ());
  (* Record the index backing once at startup so dashboards can tell a
     zero-copy (flat/mmap) deployment from an eager one. *)
  if Pmi.backing db.Query.pmi = `Flat then Psst_obs.incr m_flat_index;
  let listen_fd, bound = bind_endpoint cfg.endpoint in
  let db_ref = Atomic.make { Psst_ingest.epoch = 0; db } in
  let t =
    {
      cfg;
      db_ref;
      ingest =
        (if cfg.ingest_queue_cap > 0 then
           Some
             (Psst_ingest.create ?chain
                ?publish:(Option.map (fun p -> p.pub_publish) publisher)
                ~tenant_quota:cfg.tenant_quota
                ~queue_cap:cfg.ingest_queue_cap db_ref)
         else None);
      publisher;
      writable = cfg.writable;
      pool = Pool.create ~domains:cfg.domains ();
      cache =
        (if cfg.cache_cap > 0 then Some (Qcache.create ~value_cap:cfg.cache_cap ())
         else None);
      listen_fd;
      bound;
      mutex = Mutex.create ();
      cond = Condition.create ();
      tqueues = Hashtbl.create 8;
      tenant_rota = [];
      queued_total = 0;
      stopping = false;
      is_stopped = false;
      conns = [];
      readers = [];
      accept_thread = None;
      batch_thread = None;
      trace_ring = Queue.create ();
      served_count = Atomic.make 0;
      degraded_count = Atomic.make 0;
      retry_count = Atomic.make 0;
      start_time = Unix.gettimeofday ();
    }
  in
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t.batch_thread <-
    Some
      (Thread.create
         (fun () ->
           try batch_loop t
           with e ->
             (* A bug escaping process_batch's per-group guards: report it
                loudly; stop() can still join and shut the process down. *)
             Psst_obs.warn ~code:"server.batcher" (Printexc.to_string e))
         ());
  t

let stop t =
  Mutex.lock t.mutex;
  let already = t.stopping in
  t.stopping <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex;
  if not already then begin
    (* Unblock the accept thread. Closing the fd does NOT wake a thread
       already blocked in accept(2) on Linux, so: shutdown the listening
       socket (wakes accept on most kernels), then make one wake-up
       connection to the endpoint as a portable fallback — the accept loop
       sees [stopping] and drops it. *)
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error (_, _, _) -> ());
    (try
       let wake =
         match t.bound with
         | Proto.Unix_socket path ->
           let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
           (try Unix.connect fd (Unix.ADDR_UNIX path)
            with e -> Unix.close fd; raise e);
           fd
         | Proto.Tcp (_, port) ->
           let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
           (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
            with e -> Unix.close fd; raise e);
           fd
       in
       Unix.close wake
     with Unix.Unix_error (_, _, _) | Failure _ -> ());
    Option.iter Thread.join t.accept_thread;
    (try Unix.close t.listen_fd with Unix.Unix_error (_, _, _) -> ());
    Option.iter Thread.join t.batch_thread;
    (* Queries are drained; now drain the ingest writer so every admitted
       Add_graphs batch is applied (and persisted) and acknowledged
       before the connections go away. *)
    Option.iter Psst_ingest.stop t.ingest;
    (* Every admitted request is answered by now; drop the connections so
       the reader threads unblock and exit. *)
    Mutex.lock t.mutex;
    let conns = t.conns and readers = t.readers in
    Mutex.unlock t.mutex;
    List.iter (fun c -> close_conn t c) conns;
    List.iter Thread.join readers;
    Pool.shutdown t.pool;
    (match t.bound with
    | Proto.Unix_socket path ->
      (try Unix.unlink path with Unix.Unix_error (_, _, _) -> ())
    | Proto.Tcp _ -> ());
    t.is_stopped <- true
  end
