module Bitset = Psst_util.Bitset

(* Explicit structure: node 0 = s, node 1 = t; line k with edges
   [e_1..e_m] contributes internal nodes and labelled edges
   s -(none)- n_0 -(e_1)- n_1 - ... - n_m -(none)- t. *)
type arc = { a : int; b : int; label : int option }

type t = {
  lines : int array array;
  arcs : arc list;
  num_nodes : int;
  capacity : int;
}

let build embeddings =
  if embeddings = [] then invalid_arg "Parallel_graph.build: no embeddings";
  let capacity =
    Bitset.capacity (List.hd embeddings).Embedding.edges
  in
  let lines =
    List.map
      (fun e ->
        let edges = Array.of_list (Bitset.elements e.Embedding.edges) in
        if Array.length edges = 0 then
          invalid_arg "Parallel_graph.build: embedding without edges";
        edges)
      embeddings
    |> Array.of_list
  in
  let arcs = ref [] in
  let next_node = ref 2 in
  Array.iter
    (fun line ->
      let m = Array.length line in
      let first = !next_node in
      next_node := !next_node + m + 1;
      (* terminal attachments, unlabelled *)
      arcs := { a = 0; b = first; label = None } :: !arcs;
      arcs := { a = first + m; b = 1; label = None } :: !arcs;
      Array.iteri
        (fun i e ->
          arcs := { a = first + i; b = first + i + 1; label = Some e } :: !arcs)
        line)
    lines;
  { lines; arcs = !arcs; num_nodes = !next_node; capacity }

let num_lines t = Array.length t.lines
let label_capacity t = t.capacity

let disconnects t labels =
  let adj = Array.make t.num_nodes [] in
  List.iter
    (fun arc ->
      let removed =
        match arc.label with Some l -> Bitset.mem labels l | None -> false
      in
      if not removed then begin
        adj.(arc.a) <- arc.b :: adj.(arc.a);
        adj.(arc.b) <- arc.a :: adj.(arc.b)
      end)
    t.arcs;
  let seen = Array.make t.num_nodes false in
  let rec dfs v =
    if not seen.(v) then begin
      seen.(v) <- true;
      List.iter dfs adj.(v)
    end
  in
  dfs 0;
  not seen.(1)

let min_label_cuts ?(cap = 256) t =
  (* Every minimal s-t label cut selects at least one label per line
     (otherwise an intact line keeps s and t connected); conversely any
     one-per-line selection disconnects. Enumerate the one-per-line
     selections, minimise by inclusion, and double-check each survivor
     against the explicit structure. *)
  let choices =
    Array.to_list t.lines |> List.map (fun line -> Array.to_list line)
  in
  let product = Psst_util.Combin.cartesian choices in
  let candidates =
    List.map (fun pick -> Bitset.of_list t.capacity pick) product
  in
  let sorted =
    List.sort_uniq Bitset.compare candidates
    |> List.sort (fun a b -> compare (Bitset.cardinal a) (Bitset.cardinal b))
  in
  let minimal =
    List.fold_left
      (fun kept c ->
        if List.exists (fun k -> Bitset.subset k c) kept then kept else c :: kept)
      [] sorted
    |> List.rev
  in
  let verified = List.filter (disconnects t) minimal in
  List.filteri (fun i _ -> i < cap) verified
