lib/cuts/parallel_graph.mli: Embedding Psst_util
