(** (De)serialisation of probabilistic graphs: a stable textual format and a
    checksummed binary codec for the {!Psst_store} container.

    Textual line-oriented format:

    {v
pgraph
v <vertex label>            (one line per vertex)
e <u> <v> <edge label>      (one line per edge, ids in order)
factor <v1,v2,...> <p0> <p1> ... <p_{2^k-1}>
end
    v}

    Factors are written in their chain order, so a parsed graph passes the
    same chain-consistency validation as a constructed one. Blank lines
    and [#]-comments are ignored.

    Both parsers additionally reject factors with a conditional row whose
    probabilities sum to more than [1 + eps] (eps = {!jpt_row_eps}), with a
    diagnostic naming the factor and the row. Such rows used to slip through
    {!Pgraph.make}'s coarser chain-consistency tolerance and only surfaced
    later as silently-too-large probabilities in [Exact]. *)

val to_string : Pgraph.t -> string

(** Raises [Invalid_argument] on malformed input or on factor lists that
    fail {!Pgraph.make} validation. *)
val of_string : string -> Pgraph.t

(** Tolerance of the JPT row-sum validation. *)
val jpt_row_eps : float

(** Multi-graph archives: graphs concatenated, each terminated by its
    [end] line. *)

val write_many : out_channel -> Pgraph.t array -> unit
val read_many : in_channel -> Pgraph.t array

val save : string -> Pgraph.t array -> unit
val load : string -> Pgraph.t array

(** {1 Binary codec}

    The binary format stores float tables bit-exactly (IEEE-754 bits), so a
    loaded graph is indistinguishable from the saved one — sampling, bounds
    and verification all produce bit-identical results. *)

(** [encode_binary e g] appends one graph to a section payload. *)
val encode_binary : Psst_store.enc -> Pgraph.t -> unit

(** [decode_binary d] — raises [Psst_store.Store_error] on any malformed or
    semantically invalid data (including over-unity JPT rows). *)
val decode_binary : Psst_store.dec -> Pgraph.t

(** [save_binary path graphs] writes a [Pgdb]-kind store file. *)
val save_binary : string -> Pgraph.t array -> unit

(** [load_binary path] — raises [Psst_store.Store_error] on corruption,
    truncation, version or kind mismatch. *)
val load_binary : string -> Pgraph.t array

(** [load_auto path] sniffs the store magic and dispatches to
    {!load_binary} or the textual {!load}. *)
val load_auto : string -> Pgraph.t array

(** [db_fingerprint graphs] — CRC-32 over the canonical binary encoding of
    the whole database; indexes persist it so a stale index is rejected
    instead of silently producing bounds for different graphs. *)
val db_fingerprint : Pgraph.t array -> int32
