(** The end-to-end T-PS query processor (paper §1.2): structural pruning →
    probabilistic pruning → verification. *)

(** A database with its two indexes (structural feature-count index and
    PMI). [base] is the global-id offset of local graph 0: answers, top-k
    hits and per-candidate PRNG streams all use global ids [base + gi],
    so a shard of a larger corpus ([Psst_shard.sub_database]) answers
    with corpus-wide ids and draws the same randomness per graph as the
    monolithic database — the invariant behind scatter-gather serving.
    A monolithic database has [base = 0].

    [graphs] is a {!Corpus}: eagerly built databases hold plain arrays,
    while the [--mmap] load path decodes graphs lazily out of the mapped
    store image (memoised per graph), so constructing the database does
    not touch the graph payload at all. Skeletons come from
    {!Corpus.skeleton} (a field read on the decoded graph). *)
type database = {
  graphs : Corpus.t;
  features : Selection.feature list;
  structural : Structural.t;
  pmi : Pmi.t;
  base : int;  (** global id of local graph 0 *)
}

(** [global db gi] = [db.base + gi], the corpus-wide id of local graph
    [gi]. *)
val global : database -> int -> int

(** [index_database ?mining ?bounds ?emb_cap ?domains graphs] mines
    features over the skeletons and builds both indexes; [domains]
    parallelises the PMI bound computation (see {!Pmi.build}). *)
val index_database :
  ?mining:Selection.params ->
  ?bounds:Bounds.config ->
  ?emb_cap:int ->
  ?domains:int ->
  Pgraph.t array ->
  database

(** [add_graph db g] appends one graph to the database, extending both
    indexes incrementally (including the feature support lists, so a
    subsequent {!save_database}/{!load_database} round trip reproduces
    the same indexes). Features are {e not} re-mined: pruning on the new
    graph uses the existing feature set, which keeps every decision
    sound but may be less selective than a full re-index. *)
val add_graph : database -> Pgraph.t -> database

(** [add_graphs db gs] bulk insertion: equivalent to folding
    {!add_graph} over [gs] but with one reallocation per index row per
    batch, so loading k graphs costs O(k) appends instead of O(k²). *)
val add_graphs : database -> Pgraph.t array -> database

type config = {
  epsilon : float;  (** probability threshold ε *)
  delta : int;  (** subgraph distance threshold δ *)
  mode : Pruning.mode;  (** SSPBound vs OPT-SSPBound assembly *)
  certified : bool;  (** certified bounds (no false dismissals) vs paper's *)
  verifier : [ `Smp of Verify.config | `Exact ];
  relax_cap : int;  (** cap on relaxation enumeration *)
  seed : int;
}

val default_config : config

type stats = {
  relaxed_count : int;
  relaxed_truncated : bool;
      (** the relaxation enumeration hit [relax_cap]: the relaxed set is
          a sample, so reported SSPs are lower bounds and the answer set
          may under-approximate (a warning event with code
          ["relax.truncated"] is emitted alongside) *)
  structural_candidates : int;
  prob_candidates : int;  (** survivors needing verification *)
  accepted_by_bounds : int;  (** graphs accepted by Pruning 2 *)
  pruned_by_bounds : int;  (** graphs discarded by Pruning 1 *)
  degraded_candidates : int;
      (** candidates answered from their PMI bounds instead of verified —
          because the verification budget ran out or an injected fault cut
          verification short. Each was included (it passed the Usim ≥ ε
          screening), so a degraded answer set is a superset of the exact
          one and never drops a true answer; [> 0] flags the reply as
          degraded (DESIGN.md §12) *)
  t_relax : float;
  t_structural : float;
  t_probabilistic : float;
  t_verification : float;  (** wall-clock seconds of the verification phase *)
  t_verification_cpu : float;
      (** per-candidate verification time summed across domains; the
          phase's parallel speedup is [t_verification_cpu /.
          t_verification] *)
  verify_domains : int;  (** pool size the verification fan-out ran on *)
}

(** [trace] is the machine-readable end-to-end record of the query
    (phase times, candidate counts, flags) for [--stats-json]; it carries
    the same numbers as [stats]. *)
type outcome = { answers : int list; stats : stats; trace : Psst_obs.Trace.t }

(** [run ?domains db q config] executes the pipeline and returns the ids
    of the graphs with [Pr(q ⊆sim g) >= epsilon] (estimated by the
    configured verifier for graphs the bounds cannot decide).

    [domains] (default 1) fans the verification phase out over that many
    OCaml 5 domains. Every candidate verifies under its own PRNG stream
    [Prng.stream ~seed:config.seed (base + gi)] — and prunes under an
    independent per-candidate stream keyed the same way — so the answer
    set and every pruning counter are identical for all values of
    [domains], and identical between a monolithic database and any
    sharding of it (the per-graph verdicts never depend on which other
    graphs share the database).

    [budget_ms] (default none) bounds the verification phase: candidates
    whose verification would start after the budget elapses are answered
    from their PMI bounds and counted in [stats.degraded_candidates]
    (see its documentation for why that is superset-safe). Without a
    budget and without armed faults the result is bit-identical to
    previous releases.

    [cache] arms the cross-query verification cache ({!Qcache}): relaxed
    sets, prepared memberships, embedding sets, Karp–Luby preparations
    and final SSP values memoise across repeated and related queries.
    Because every cached artifact is a deterministic function of its key
    — per-candidate PRNG streams make even the sampled SSP one — answers
    with a cache (cold or warm) are bit-identical to answers without
    one. The cache self-invalidates when the database changes
    ({!add_graphs}, {!load_database}). *)
val run :
  ?domains:int ->
  ?budget_ms:float ->
  ?cache:Qcache.t ->
  database ->
  Lgraph.t ->
  config ->
  outcome

(** [run_batch ?domains db queries config] answers many queries on one
    domain pool — the heavy-traffic path. Queries and their verification
    tasks interleave freely on the pool; outcome [i] is bit-identical to
    [run db (List.nth queries i) config]. [budget_ms] is one shared
    absolute deadline fixed when the batch starts. *)
val run_batch :
  ?domains:int ->
  ?budget_ms:float ->
  ?cache:Qcache.t ->
  database ->
  Lgraph.t list ->
  config ->
  outcome list

(** [run_batch_on pool db queries config] — {!run_batch} on a caller-owned
    pool, so a resident process (the query server) pays domain spawning
    once at startup instead of once per micro-batch. Outcomes are
    bit-identical to {!run_batch} with [domains = Pool.size pool]. *)
val run_batch_on :
  ?budget_ms:float ->
  ?cache:Qcache.t ->
  Psst_util.Pool.t ->
  database ->
  Lgraph.t list ->
  config ->
  outcome list

(** [run_bounds_only db q config] — phases 1–2 alone: every candidate the
    bounds cannot decide is included and counted degraded. The fallback
    the server uses when the verification stage itself is unavailable
    (DESIGN.md §12); the answer set is a superset of {!run}'s. *)
val run_bounds_only : ?cache:Qcache.t -> database -> Lgraph.t -> config -> outcome

(** Wire codec for {!config} (used by the RPC protocol of [Psst_server]).
    [get_config] validates variant tags and numeric ranges, raising
    [Psst_store.Store_error] on anything invalid.

    [adaptive_field] (default [true]) selects whether an SMP verifier
    carries its [adaptive] byte. The RPC layer passes [false] for
    pre-v3 protocol frames, whose configs predate the flag: encoding
    drops it and decoding defaults it to [false]. *)
val put_config : ?adaptive_field:bool -> Psst_store.enc -> config -> unit

val get_config : ?adaptive_field:bool -> Psst_store.dec -> config

(** The pruning-phase PRNG stream of global graph id [gid]: stream index
    [lnot gid], disjoint from the verification streams (which use the
    non-negative [gid] itself), so the two phases never consume
    correlated randomness. Shared with {!Topk}'s ranking bound. *)
val prune_stream : seed:int -> int -> Psst_util.Prng.t

(** {1 Persistence (DESIGN.md §9)}

    The whole query-time state — probabilistic graphs with their JPTs,
    mined features, the structural count matrix and the PMI bound matrix —
    as one {!Psst_store} file, so a process answers queries without paying
    mining or {!Pmi.build} again. *)

(** [save_database path db] writes a [Database]-kind store file.

    [~flat:true] writes the succinct mmap-ready image instead (DESIGN.md
    §15): delta-coded PMI postings, a fixed-width bounds array, u16
    structural count cells, and directory sections — the only layout
    {!load_database}'s [~mmap:true] accepts. Both layouts load to
    bit-identical query behaviour. *)
val save_database : ?flat:bool -> string -> database -> unit

(** The section-level codec behind {!save_database}/{!load_database},
    exposed so the shard store ([lib/shard]) can compose a database's
    sections with its own metadata in one file. A non-zero [base] is
    carried in an extra ["db.base"] section (absent for monolithic
    databases, so files from previous releases round-trip unchanged).
    With [~flat:true] the caller must apply {!Psst_store.align_payloads}
    (targets ["structural.flat.counts"] and ["pmi.flat.bounds"]) before
    writing, as {!save_database} does. *)
val database_sections : ?flat:bool -> database -> Psst_store.section list

val database_of_sections : ?salvage:bool -> Psst_store.section list -> database

(** [load_database path] — raises [Psst_store.Store_error] on corruption,
    truncation, version skew, or when the embedded PMI's fingerprint does
    not match the embedded graphs. Queries on the result are bit-identical
    to queries on the database that was saved. [~salvage:true] applies
    {!Pmi.load}'s self-healing to the embedded PMI entry shards (for a
    flat image, a damaged flat section rebuilds all columns); the graphs
    and structural sections have no rebuild source and must be intact
    either way.

    [~mmap:true] memory-maps a flat image ({!save_database} with
    [~flat:true]) instead of decoding it: PMI lookups and structural
    count cells read zero-copy out of the mapping, so cold start skips
    the O(features x graphs) decode entirely (the file is still
    integrity-scanned once, and graphs/skeletons are still materialised).
    Queries are bit-identical to the eager load of the same file. A
    non-flat store raises [Store_error] suggesting [--flat]; combined
    with [~salvage:true], any mmap failure falls back to the eager
    salvage loader. *)
val load_database : ?salvage:bool -> ?mmap:bool -> string -> database

(** [run_exact_scan db q config] — the paper's Exact competitor: no
    indexes, exact SSP on every graph. *)
val run_exact_scan : database -> Lgraph.t -> config -> outcome

(** Ground-truth answer set via exact SSP on every structurally plausible
    graph (used for precision/recall experiments; exponential). *)
val ground_truth : database -> Lgraph.t -> config -> int list
